//! The serve half of the seeded chaos matrix.
//!
//! Each family × seed drives a full client sweep over real TCP with
//! fault injection on the *client's* stream halves (torn writes, short
//! reads, injected interrupts, mid-stream connection resets) or on the
//! server's journal sink (disk full), and asserts the headline property:
//! **every sweep converges to byte-identical output**. The client's
//! reconnect-and-re-issue layer plus the server's idempotent submissions
//! are what make that true; the matrix is what proves it.
//!
//! The fault *plans* are seeded and deterministic; op boundaries on a
//! live socket can shift with kernel buffering, so the assertions here
//! are convergence and byte-identical results per seed, not identical
//! fault schedules.
//!
//! Seed count defaults to 64 per family; `PIM_CHAOS_SEEDS` overrides it
//! (CI smoke uses a small count, `scripts/chaos_smoke.sh --full` forces
//! the full matrix).

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pim_chaos::{ChaosConfig, ChaosFile, ChaosPlan};
use pim_faults::DmpimError;
use pim_harness::journal::record_line;
use pim_harness::FsyncPolicy;
use pim_serve::recovery::{RecoveredState, ServeJournal};
use pim_serve::{Client, ClientConfig, Resolver, Scheduler, ServeError, ServePolicy, Server};
use pim_trace::Tracer;

const JOBS: u64 = 6;

fn seeds() -> u64 {
    std::env::var("PIM_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

fn square_resolver() -> Resolver {
    Arc::new(|spec: &str, _ctx| {
        spec.strip_prefix("square:")
            .and_then(|n| n.parse::<u64>().ok())
            .map(|n| format!("{}", n * n))
            .ok_or(DmpimError::UnknownExperiment { id: spec.to_string() })
    })
}

fn quick_policy() -> ServePolicy {
    ServePolicy {
        workers: 2,
        retry_backoff: Duration::from_millis(1),
        fsync: FsyncPolicy::Off,
        ..ServePolicy::default()
    }
}

fn spawn_server() -> (String, Arc<Scheduler>, thread::JoinHandle<Result<(), ServeError>>) {
    let tracer = Tracer::new();
    let scheduler = Arc::new(
        Scheduler::start(quick_policy(), square_resolver(), tracer.clone(), None).unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&scheduler), tracer).unwrap();
    let addr = server.local_addr().to_string();
    let handle = thread::spawn(move || server.run());
    (addr, scheduler, handle)
}

fn chaos_client(cfg: ChaosConfig, seed: u64) -> ClientConfig {
    ClientConfig {
        read_timeout: Some(Duration::from_secs(20)),
        reconnect_attempts: 12,
        reconnect_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(40),
        chaos: Some((cfg, seed)),
    }
}

/// One client sweep: submit [`JOBS`] squares, wait for each, render the
/// outputs in job order — the "stdout" the matrix compares.
fn sweep(addr: &str, name: &str, cfg: Option<(ChaosConfig, u64)>) -> String {
    let client_cfg = match cfg {
        Some((c, seed)) => chaos_client(c, seed),
        None => ClientConfig::default(),
    };
    let mut client = Client::connect_with(addr, name, client_cfg).unwrap();
    for n in 0..JOBS {
        client
            .submit(&format!("{name}-{n}"), &format!("square:{n}"))
            .unwrap_or_else(|e| panic!("{name}: submit {n}: {e}"));
    }
    let mut out = String::new();
    for n in 0..JOBS {
        let r = client
            .wait(&format!("{name}-{n}"), Some(Duration::from_secs(30)))
            .unwrap_or_else(|e| panic!("{name}: wait {n}: {e}"));
        out.push_str(&record_line(&r));
        out.push('\n');
    }
    out
}

fn run_family(family: &str, cfg: ChaosConfig) {
    let (addr, scheduler, handle) = spawn_server();
    // The reference sweep runs with chaos disabled; its job ids differ
    // (ids embed the sweep name) so rewrite them out of the comparison.
    let reference = sweep(&addr, "ref", None).replace("\"job\":\"ref-", "\"job\":\"X-");
    for seed in 0..seeds() {
        let name = format!("{family}-{seed}");
        let out = sweep(&addr, &name, Some((cfg, seed)))
            .replace(&format!("\"job\":\"{name}-"), "\"job\":\"X-");
        assert_eq!(out, reference, "family {family} seed {seed} diverged");
    }
    scheduler.drain();
    scheduler.join();
    handle.join().unwrap().unwrap();
}

#[test]
fn torn_writes_converge_to_byte_identical_results() {
    run_family("torn", ChaosConfig::torn_writes());
}

#[test]
fn short_reads_converge_to_byte_identical_results() {
    run_family("shortread", ChaosConfig::short_reads());
}

#[test]
fn interrupt_storms_converge_to_byte_identical_results() {
    run_family("intr", ChaosConfig::interrupts());
}

#[test]
fn mid_stream_resets_reconnect_and_converge() {
    // Onset in [10, 40) ops: every connection survives the handshake and
    // at least one full call before it dies, so progress is guaranteed
    // while every seed still exercises several resets per sweep.
    run_family("reset", ChaosConfig::reset_between(10, 40));
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pim-serve-chaos-{}-{name}.jsonl", std::process::id()))
}

#[test]
fn disk_full_journal_degrades_gracefully_and_survivors_replay_bit_identically() {
    for seed in 0..seeds() {
        let path = temp_path(&format!("diskfull-{seed}"));
        std::fs::remove_file(&path).ok();

        // Journal budget: header always fits, onset lands somewhere in
        // the record stream (varies with seed).
        let budget = 60 + (seed % 7) * 45;
        let file =
            ChaosFile::create(&path, ChaosPlan::new(ChaosConfig::disk_full(budget), seed))
                .unwrap();
        let journal = ServeJournal::from_sink(&path, Box::new(file), FsyncPolicy::Off).unwrap();
        let s = Scheduler::start_with_journal(
            quick_policy(),
            square_resolver(),
            Tracer::disabled(),
            Some(journal),
            RecoveredState::default(),
        )
        .unwrap();

        let mut results = Vec::new();
        for n in 0..JOBS {
            assert!(
                matches!(
                    s.submit("c1", &format!("j{n}"), &format!("square:{n}")),
                    pim_serve::SubmitOutcome::Accepted { .. }
                ),
                "seed {seed}: a full disk must not refuse admission"
            );
        }
        for n in 0..JOBS {
            match s.wait(&format!("j{n}"), Some(Duration::from_secs(10))) {
                pim_serve::WaitOutcome::Done(r) => {
                    assert_eq!(r.output.as_deref(), Some(format!("{}", n * n).as_str()));
                    results.push(r);
                }
                other => panic!("seed {seed} j{n}: {other:?}"),
            }
        }
        let (degraded, dropped) = s.journal_health();
        assert!(degraded, "seed {seed}: budget {budget} should trip disk-full");
        assert!(dropped > 0);
        s.drain();
        s.join();

        // Whatever survived on disk replays, and every surviving result
        // is bit-identical to the one served from memory.
        let (_, state) = ServeJournal::recover(&path).unwrap();
        for (id, restored) in &state.results {
            let n: usize = id.trim_start_matches('j').parse().unwrap();
            assert_eq!(
                record_line(restored),
                record_line(&results[n]),
                "seed {seed}: surviving record {id} diverged"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
