//! End-to-end tests over real TCP: a bound server, real client
//! connections, and the full robustness story — typed overload
//! rejections, graceful drain, crash recovery from the journal, and the
//! HTTP metrics scrape — exercised through the wire rather than the
//! scheduler API.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pim_faults::DmpimError;
use pim_harness::JobStatus;
use pim_serve::{
    Client, QuotaPolicy, RejectKind, Resolver, Scheduler, ServeError, ServePolicy, Server,
    ShutdownMode,
};
use pim_trace::Tracer;

/// Deterministic test catalog: `square:<n>` computes, `sleep:<ms>` stalls
/// then succeeds, anything else is an unknown-spec error.
fn test_resolver() -> Resolver {
    Arc::new(|spec: &str, _ctx| {
        if let Some(n) = spec.strip_prefix("square:") {
            let n: u64 = n.parse().map_err(|_| DmpimError::UnknownExperiment {
                id: spec.to_string(),
            })?;
            Ok(format!("{}", n * n))
        } else if let Some(ms) = spec.strip_prefix("sleep:") {
            let ms: u64 = ms.parse().unwrap_or(0);
            thread::sleep(Duration::from_millis(ms));
            Ok(format!("slept {ms}"))
        } else {
            Err(DmpimError::UnknownExperiment { id: spec.to_string() })
        }
    })
}

fn quick_policy() -> ServePolicy {
    ServePolicy { workers: 2, retry_backoff: Duration::from_millis(1), ..ServePolicy::default() }
}

/// Bind a server on an ephemeral port and run it on a background thread.
/// Returns the address and the join handle (joins once the scheduler
/// stops, i.e. after a drain completes or `stop_now`).
fn spawn_server(
    policy: ServePolicy,
    journal: Option<&std::path::Path>,
) -> (String, Arc<Scheduler>, thread::JoinHandle<Result<(), ServeError>>) {
    let tracer = Tracer::new();
    let scheduler =
        Arc::new(Scheduler::start(policy, test_resolver(), tracer.clone(), journal).unwrap());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&scheduler), tracer).unwrap();
    let addr = server.local_addr().to_string();
    let handle = thread::spawn(move || server.run());
    (addr, scheduler, handle)
}

fn temp_path(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pim-serve-it-{}-{seq}-{name}", std::process::id()))
}

#[test]
fn submit_wait_stats_and_metrics_scrape_over_tcp() {
    let (addr, _scheduler, handle) = spawn_server(quick_policy(), None);
    let mut client = Client::connect(&addr, "it").unwrap();
    client.ping().unwrap();

    for n in 0..10u64 {
        client.submit(&format!("j{n}"), &format!("square:{n}")).unwrap();
    }
    for n in 0..10u64 {
        let r = client.wait(&format!("j{n}"), Some(Duration::from_secs(30))).unwrap();
        assert_eq!(r.status, JobStatus::Succeeded);
        assert_eq!(r.output.as_deref(), Some(format!("{}", n * n).as_str()), "j{n}");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.submitted, 10);
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.succeeded, 10);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.clients, 1);
    assert_eq!(stats.workers, 2);

    // JSONL metrics op: raw tracer dump, must mention the serve gauges.
    let metrics = client.metrics_raw().unwrap();
    assert!(metrics.contains("serve.workers"), "{metrics}");
    assert!(metrics.contains("serve.submitted"), "{metrics}");

    // HTTP scrape on the *same* port: curl-style GET /metrics.
    let mut http = TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.contains("Content-Type: application/json\r\n"), "{body}");
    assert!(body.contains("serve.in_flight"), "{body}");

    // The same resource in the Prometheus text representation: correct
    // Content-Type header, every line parses, and the per-job wall-time
    // histogram plus the attempt counter from the sweep are present.
    let mut http = TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /metrics?format=prometheus HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut prom = String::new();
    http.read_to_string(&mut prom).unwrap();
    assert!(prom.starts_with("HTTP/1.1 200 OK"), "{prom}");
    assert!(
        prom.contains(&format!("Content-Type: {}\r\n", pim_obs::PROMETHEUS_CONTENT_TYPE)),
        "{prom}"
    );
    let prom_body = prom.split("\r\n\r\n").nth(1).expect("http body");
    let samples = pim_obs::validate_prometheus(prom_body).expect("every metric line parses");
    assert!(samples > 0, "{prom_body}");
    assert!(prom_body.contains("# TYPE dmpim_serve_completed counter"), "{prom_body}");
    assert!(prom_body.contains("# TYPE dmpim_serve_attempts counter"), "{prom_body}");
    assert!(prom_body.contains("# TYPE dmpim_serve_in_flight gauge"), "{prom_body}");
    assert!(prom_body.contains("# TYPE dmpim_serve_job_wall_ms histogram"), "{prom_body}");
    assert!(prom_body.contains("dmpim_serve_job_wall_ms_bucket{le=\"+Inf\"} 10"), "{prom_body}");
    assert!(prom_body.contains("dmpim_serve_job_wall_ms_count 10"), "{prom_body}");

    let mut http = TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut health = String::new();
    http.read_to_string(&mut health).unwrap();
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("\"state\":\"ok\""), "{health}");
    assert!(health.contains("Content-Type: application/json\r\n"), "{health}");

    let mut http = TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut missing = String::new();
    http.read_to_string(&mut missing).unwrap();
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    client.shutdown(ShutdownMode::Drain).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn garbage_requests_get_typed_bad_request_not_a_dropped_connection() {
    let (addr, _scheduler, handle) = spawn_server(quick_policy(), None);

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"this is not a request\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"type\":\"rejected\""), "{line}");
    assert!(line.contains("\"error\":\"bad-request\""), "{line}");

    // The connection survives the bad line: a good request still works.
    writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"type\":\"pong\""), "{line}");
    drop((reader, writer));

    let mut client = Client::connect(&addr, "it").unwrap();
    client.shutdown(ShutdownMode::Drain).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn overload_rejections_are_typed_over_the_wire() {
    let policy = ServePolicy {
        quota: QuotaPolicy { max_in_flight_per_client: 1, max_queue_depth: 0 },
        ..quick_policy()
    };
    let (addr, _scheduler, handle) = spawn_server(policy, None);
    let mut client = Client::connect(&addr, "greedy").unwrap();

    client.submit("slow", "sleep:400").unwrap();
    // Second submission while the first is in flight: a typed overloaded
    // rejection carrying the tripped scope and limit, not a hang.
    let err = client.submit("extra", "square:3").unwrap_err();
    match err {
        ServeError::Rejected(reject) => {
            assert_eq!(reject.kind, RejectKind::Overloaded);
            assert_eq!(reject.scope, Some("client"));
            assert_eq!(reject.current, Some(1));
            assert_eq!(reject.limit, Some(1));
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }

    // Once the slot frees, the same client is admitted again.
    client.wait("slow", Some(Duration::from_secs(30))).unwrap();
    client.submit("extra", "square:3").unwrap();
    let r = client.wait("extra", Some(Duration::from_secs(30))).unwrap();
    assert_eq!(r.output.as_deref(), Some("9"));
    assert!(client.stats().unwrap().overloaded >= 1);

    client.shutdown(ShutdownMode::Drain).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn drain_finishes_in_flight_work_and_refuses_new_clients_typed() {
    let (addr, scheduler, handle) = spawn_server(quick_policy(), None);
    let mut client = Client::connect(&addr, "it").unwrap();
    for n in 0..4 {
        client.submit(&format!("s{n}"), "sleep:700").unwrap();
    }
    client.shutdown(ShutdownMode::Drain).unwrap();

    // While the drain runs, new submissions are refused with a typed
    // `draining` rejection (when the window is long enough to observe).
    if !scheduler.is_stopped() {
        if let Ok(mut late) = Client::connect(&addr, "late") {
            match late.submit("nope", "square:1") {
                Err(ServeError::Rejected(r)) => assert_eq!(r.kind, RejectKind::Draining),
                Ok(_) => panic!("draining server admitted new work"),
                // The server may finish draining and close the socket
                // between our connect and submit; that's a race, not a
                // protocol violation.
                Err(_) => {}
            }
        }
    }

    // Zero loss: the drain completes every in-flight job, and the results
    // are all on record.
    handle.join().unwrap().unwrap();
    for n in 0..4 {
        let r = scheduler.result(&format!("s{n}")).expect("drained job has a result");
        assert_eq!(r.status, JobStatus::Succeeded, "s{n}");
        assert_eq!(r.output.as_deref(), Some("slept 700"));
    }
}

#[test]
fn crash_recovery_over_tcp_resumes_and_results_are_bit_identical() {
    let journal = temp_path("crash.jsonl");
    let ids: Vec<String> = (0..8u64).map(|n| format!("j{n}")).collect();

    // Phase 1: submit everything, wait for a prefix, then hard-stop the
    // server mid-sweep (the in-process stand-in for SIGKILL; the chaos
    // smoke in scripts/check.sh kills a real process).
    let mut finished_before = Vec::new();
    {
        let (addr, scheduler, handle) = spawn_server(quick_policy(), Some(&journal));
        let mut client = Client::connect(&addr, "repro").unwrap();
        for (n, id) in ids.iter().enumerate() {
            let spec = if n < 3 {
                format!("square:{n}")
            } else {
                // Enough runway that the stop lands mid-sweep.
                "sleep:300".to_string()
            };
            client.submit(id, &spec).unwrap();
        }
        for id in &ids[..3] {
            finished_before.push(client.wait(id, Some(Duration::from_secs(30))).unwrap());
        }
        scheduler.stop_now();
        handle.join().unwrap().unwrap();
    }

    // Phase 2: a fresh server on the same journal recovers: finished jobs
    // replay bit-identically, unfinished ones re-run; an idempotent client
    // rerun re-attaches instead of re-executing.
    let (addr, _scheduler, handle) = spawn_server(quick_policy(), Some(&journal));
    let mut client = Client::connect(&addr, "repro").unwrap();
    for (n, id) in ids.iter().enumerate() {
        let spec =
            if n < 3 { format!("square:{n}") } else { "sleep:300".to_string() };
        client.submit(id, &spec).unwrap();
    }
    let stats = client.stats().unwrap();
    assert!(stats.recovered >= 3, "journal replay should restore the finished prefix: {stats:?}");

    for (n, id) in ids.iter().enumerate() {
        let r = client.wait(id, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(r.status, JobStatus::Succeeded, "{id}");
        if n < 3 {
            // Bit-identical to what the crashed server handed out, down to
            // the serialized journal record.
            let before = &finished_before[n];
            assert_eq!(
                pim_harness::journal::record_line(&r),
                pim_harness::journal::record_line(before),
                "{id}"
            );
        } else {
            assert_eq!(r.output.as_deref(), Some("slept 300"), "{id}");
        }
    }

    client.shutdown(ShutdownMode::Drain).unwrap();
    handle.join().unwrap().unwrap();
    std::fs::remove_file(&journal).ok();
}

#[test]
fn high_priority_submissions_overtake_queued_normals_over_tcp() {
    use std::sync::Mutex;

    use pim_serve::Priority;

    // A resolver that records completion order. One worker and a refill
    // batch of 1 make execution strictly serial in injector dequeue
    // order, so the recorded order IS the queueing decision.
    let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let o = Arc::clone(&order);
    let resolver: Resolver = Arc::new(move |spec: &str, _ctx| {
        if spec == "block" {
            thread::sleep(Duration::from_millis(400));
        }
        o.lock().unwrap().push(spec.to_string());
        Ok(spec.to_string())
    });
    let policy = ServePolicy { workers: 1, refill_batch: 1, ..quick_policy() };
    let tracer = Tracer::new();
    let scheduler = Arc::new(Scheduler::start(policy, resolver, tracer.clone(), None).unwrap());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&scheduler), tracer).unwrap();
    let addr = server.local_addr().to_string();
    let handle = thread::spawn(move || server.run());

    let mut client = Client::connect(&addr, "it").unwrap();
    // Occupy the only worker so everything below queues in the injector.
    client.submit("blocker", "block").unwrap();
    thread::sleep(Duration::from_millis(100));
    // Bulk work first, then an interactive burst on top of it.
    for n in 0..4u64 {
        client.submit(&format!("n{n}"), &format!("normal-{n}")).unwrap();
    }
    for n in 0..4u64 {
        client.submit_priority(&format!("h{n}"), &format!("high-{n}"), Priority::High).unwrap();
    }
    for id in ["blocker", "n0", "n1", "n2", "n3", "h0", "h1", "h2", "h3"] {
        let r = client.wait(id, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(r.status, JobStatus::Succeeded, "{id}");
    }

    let got = order.lock().unwrap().clone();
    assert_eq!(got[0], "block");
    let after: Vec<&str> = got[1..].iter().map(String::as_str).collect();
    // The high burst overtakes the earlier-submitted normals...
    assert!(
        after[0].starts_with("high-") && after[1].starts_with("high-"),
        "high lane must drain first: {after:?}"
    );
    let highs_in_first_four = after[..4].iter().filter(|s| s.starts_with("high-")).count();
    assert!(highs_in_first_four >= 3, "high lane dominates the front: {after:?}");
    // ...but the fairness stride keeps the normal lane live while highs
    // are still pending (starvation-free).
    let first_normal = after.iter().position(|s| s.starts_with("normal-")).unwrap();
    assert!(first_normal < 4, "a normal job must run within one stride: {after:?}");
    // Within each class, FIFO submission order is preserved.
    let highs: Vec<&str> = after.iter().copied().filter(|s| s.starts_with("high-")).collect();
    let normals: Vec<&str> = after.iter().copied().filter(|s| s.starts_with("normal-")).collect();
    assert_eq!(highs, ["high-0", "high-1", "high-2", "high-3"]);
    assert_eq!(normals, ["normal-0", "normal-1", "normal-2", "normal-3"]);

    client.shutdown(ShutdownMode::Drain).unwrap();
    handle.join().unwrap().unwrap();
    scheduler.join();
}
