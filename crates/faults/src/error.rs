//! The workspace-wide error type.
//!
//! Every non-test simulation path in the workspace reports failure through
//! [`DmpimError`] instead of panicking: malformed configurations, corrupt
//! compressed streams, injected hardware faults and watchdog timeouts all
//! arrive here, so drivers can retry, degrade to another execution mode,
//! or surface the failure in a report.

use std::fmt;

use crate::Ps;

/// The class of an injected hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A raw DRAM bit flip (detected by ECC; multi-bit flips are
    /// uncorrectable).
    BitFlip,
    /// A stacked-memory vault failed permanently.
    VaultFailure,
    /// The PIM core / accelerator in the logic layer is unavailable
    /// (power gating, firmware reset) for a bounded window.
    PimUnavailable,
    /// The logic layer is thermally throttled (slows execution, never
    /// raises an error by itself).
    ThermalThrottle,
    /// A transaction was dropped on a transfer channel and retransmitted.
    DroppedTransaction,
    /// A transaction was duplicated on a transfer channel.
    DuplicatedTransaction,
}

impl FaultKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::VaultFailure => "vault-failure",
            FaultKind::PimUnavailable => "pim-unavailable",
            FaultKind::ThermalThrottle => "thermal-throttle",
            FaultKind::DroppedTransaction => "dropped-transaction",
            FaultKind::DuplicatedTransaction => "duplicated-transaction",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything that can go wrong on a simulation path.
///
/// Transient variants ([`DmpimError::is_transient`]) are worth retrying
/// after a backoff; persistent ones call for falling back to another
/// execution mode (`PimAcc → PimCore → CpuOnly`) or aborting the run.
#[derive(Debug, Clone, PartialEq)]
pub enum DmpimError {
    /// A configuration failed validation before the run started.
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
    /// A modeled capacity (area budget, buffer size, schedule horizon)
    /// was exceeded.
    CapacityExceeded {
        /// The capacity that overflowed.
        what: &'static str,
        /// Requested amount.
        requested: u64,
        /// The limit.
        limit: u64,
    },
    /// Input data (a compressed stream, a bitstream) is malformed.
    Corrupt {
        /// Byte offset of the first inconsistency.
        at: usize,
        /// What was inconsistent.
        what: &'static str,
    },
    /// An engine port was used against a memory system that cannot serve
    /// it (a PIM port on an LPDDR3 baseline).
    PortUnsupported {
        /// The offending port.
        port: &'static str,
    },
    /// An injected fault that a retry can outlive (ECC-detected multi-bit
    /// flip, PIM-unavailability window, link fault storm).
    FaultTransient {
        /// The fault class.
        kind: FaultKind,
        /// Simulated time of the hit.
        at_ps: Ps,
    },
    /// An injected fault that no retry under the same mode can outlive
    /// (a failed vault holding the working set).
    FaultUnrecoverable {
        /// The fault class.
        kind: FaultKind,
        /// Simulated time of the hit.
        at_ps: Ps,
    },
    /// The watchdog tripped: the simulation exceeded its simulated-time or
    /// host-iteration budget.
    WatchdogTimeout {
        /// Which bound tripped (`"simulated time"` / `"host events"`).
        what: &'static str,
        /// The configured limit.
        limit: u64,
        /// Simulated time when it tripped.
        at_ps: Ps,
    },
    /// An unknown experiment identifier was requested from the bench
    /// harness.
    UnknownExperiment {
        /// The identifier.
        id: String,
    },
}

impl DmpimError {
    /// Shorthand for a corrupt-data error.
    pub fn corrupt(at: usize, what: &'static str) -> Self {
        DmpimError::Corrupt { at, what }
    }

    /// Shorthand for a config-validation error.
    pub fn invalid_config(what: impl Into<String>) -> Self {
        DmpimError::InvalidConfig { what: what.into() }
    }

    /// Whether a retry (with backoff) under the same execution mode has a
    /// chance of succeeding.
    pub fn is_transient(&self) -> bool {
        matches!(self, DmpimError::FaultTransient { .. })
    }

    /// Short static label of the error variant (fault errors use the fault
    /// class label); used as a trace-event name and in JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            DmpimError::InvalidConfig { .. } => "invalid-config",
            DmpimError::CapacityExceeded { .. } => "capacity-exceeded",
            DmpimError::Corrupt { .. } => "corrupt",
            DmpimError::PortUnsupported { .. } => "port-unsupported",
            DmpimError::FaultTransient { kind, .. }
            | DmpimError::FaultUnrecoverable { kind, .. } => kind.label(),
            DmpimError::WatchdogTimeout { .. } => "watchdog-timeout",
            DmpimError::UnknownExperiment { .. } => "unknown-experiment",
        }
    }

    /// The fault class, if this error came from an injected fault.
    pub fn fault_kind(&self) -> Option<FaultKind> {
        match self {
            DmpimError::FaultTransient { kind, .. }
            | DmpimError::FaultUnrecoverable { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

impl fmt::Display for DmpimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmpimError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            DmpimError::CapacityExceeded { what, requested, limit } => {
                write!(f, "capacity exceeded: {what} ({requested} > {limit})")
            }
            DmpimError::Corrupt { at, what } => {
                write!(f, "corrupt stream at byte {at}: {what}")
            }
            DmpimError::PortUnsupported { port } => {
                write!(f, "{port} port requires 3D-stacked memory")
            }
            DmpimError::FaultTransient { kind, at_ps } => {
                write!(f, "transient {kind} fault at {at_ps} ps")
            }
            DmpimError::FaultUnrecoverable { kind, at_ps } => {
                write!(f, "unrecoverable {kind} fault at {at_ps} ps")
            }
            DmpimError::WatchdogTimeout { what, limit, at_ps } => {
                write!(f, "watchdog timeout: {what} exceeded {limit} at {at_ps} ps")
            }
            DmpimError::UnknownExperiment { id } => {
                write!(f, "unknown experiment id: {id}")
            }
        }
    }
}

impl std::error::Error for DmpimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        let t = DmpimError::FaultTransient { kind: FaultKind::BitFlip, at_ps: 5 };
        let p = DmpimError::FaultUnrecoverable { kind: FaultKind::VaultFailure, at_ps: 5 };
        assert!(t.is_transient());
        assert!(!p.is_transient());
        assert_eq!(t.fault_kind(), Some(FaultKind::BitFlip));
        assert_eq!(DmpimError::corrupt(3, "x").fault_kind(), None);
    }

    #[test]
    fn display_mentions_specifics() {
        let e = DmpimError::WatchdogTimeout { what: "host events", limit: 10, at_ps: 99 };
        let s = e.to_string();
        assert!(s.contains("host events") && s.contains("99"));
        assert!(DmpimError::corrupt(7, "bad token").to_string().contains("byte 7"));
        for k in [
            FaultKind::BitFlip,
            FaultKind::VaultFailure,
            FaultKind::PimUnavailable,
            FaultKind::ThermalThrottle,
            FaultKind::DroppedTransaction,
            FaultKind::DuplicatedTransaction,
        ] {
            assert!(!k.label().is_empty());
        }
    }
}
