//! Seeded, deterministic fault schedules and the watchdog.
//!
//! A [`FaultPlan`] is built once from a [`FaultConfig`] and a seed. All
//! *windowed* events (vault failures, PIM-unavailability windows, thermal
//! throttle intervals) are drawn up front from the seed, so they are the
//! persistent "state of the world": retrying an offload attempt does not
//! reroll them, only waiting (simulated time advancing past a window)
//! helps. *Per-access* draws (DRAM bit flips) come from a separate stream
//! salted per attempt, so a retry of a transiently-faulted run can
//! succeed — exactly the behaviour a runtime fallback policy needs.
//!
//! All draws use [`SplitMix64`], so a plan is bit-reproducible across
//! runs and platforms: same seed ⇒ identical schedule ⇒ identical
//! `RunReport` (enforced by `tests/fault_injection.rs`).

use crate::error::{DmpimError, FaultKind};
use crate::rng::SplitMix64;
use crate::Ps;

/// ECC model for the DRAM arrays: single-event flips are corrected for a
/// small latency charge; a configurable fraction of events exceed the
/// code's correction capability and surface as detected-uncorrectable
/// errors (a transient fault to the offload layer, which re-reads or
/// reloads the data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccConfig {
    /// Whether ECC detect/correct logic is present. Without it, flips are
    /// silent corruption: counted, never surfaced as errors.
    pub enabled: bool,
    /// Fraction of raw flip events that hit more bits than the code can
    /// correct (detected-uncorrectable).
    pub uncorrectable_fraction: f64,
    /// Extra latency charged per corrected event, in ps.
    pub correction_ps: Ps,
}

impl Default for EccConfig {
    fn default() -> Self {
        Self { enabled: true, uncorrectable_fraction: 0.05, correction_ps: 2_000 }
    }
}

/// Fault-injection configuration. [`FaultConfig::none`] injects nothing
/// and is guaranteed to leave every simulated number bit-identical to a
/// run without any fault plan attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Expected raw DRAM bit-flip events per GiB of DRAM traffic.
    pub bit_flips_per_gb: f64,
    /// Probability that each vault fails permanently somewhere inside the
    /// horizon.
    pub vault_fail_prob: f64,
    /// Number of vaults in the stack (Table 1: 16).
    pub vaults: u32,
    /// Number of PIM-unavailability windows across the horizon.
    pub unavail_windows: u32,
    /// Length of each unavailability window, in ps.
    pub unavail_window_ps: Ps,
    /// Number of thermal-throttle windows across the horizon.
    pub throttle_windows: u32,
    /// Length of each throttle window, in ps.
    pub throttle_window_ps: Ps,
    /// Slowdown applied to logic-layer engines inside a throttle window
    /// (≥ 1.0; 1.0 disables throttling).
    pub throttle_factor: f64,
    /// Probability a channel transaction is dropped (and retransmitted).
    pub drop_prob: f64,
    /// Probability a channel transaction is duplicated.
    pub dup_prob: f64,
    /// Horizon over which windowed events are scheduled, in simulated ps.
    pub horizon_ps: Ps,
    /// ECC model.
    pub ecc: EccConfig,
}

impl FaultConfig {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self {
            bit_flips_per_gb: 0.0,
            vault_fail_prob: 0.0,
            vaults: 16,
            unavail_windows: 0,
            unavail_window_ps: 0,
            throttle_windows: 0,
            throttle_window_ps: 0,
            throttle_factor: 1.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            horizon_ps: 1_000_000_000_000, // 1 s
            ecc: EccConfig::default(),
        }
    }

    /// A single-knob preset: `rate` in `[0, 1]` scales every fault class
    /// from "nothing" to "hostile environment". Used by the fault-rate
    /// sweep example and tests.
    ///
    /// The constants are *accelerated* injection rates, scaled so that the
    /// microsecond-scale kernel runs of this repository actually meet
    /// faults: the horizon is a 200 µs burst, and flip rates are orders of
    /// magnitude above field FIT rates (as in real accelerated testing).
    pub fn with_rate(rate: f64) -> Self {
        let r = rate.clamp(0.0, 1.0);
        Self {
            bit_flips_per_gb: 2_000.0 * r,
            vault_fail_prob: 0.05 * r,
            unavail_windows: (4.0 * r).round() as u32,
            unavail_window_ps: 30_000_000, // 30 us
            throttle_windows: (3.0 * r).round() as u32,
            throttle_window_ps: 40_000_000, // 40 us
            throttle_factor: 1.0 + 0.8 * r,
            drop_prob: 0.002 * r,
            dup_prob: 0.001 * r,
            horizon_ps: 200_000_000, // 200 us
            ..Self::none()
        }
    }

    /// Whether this configuration can never inject anything.
    pub fn is_zero(&self) -> bool {
        self.bit_flips_per_gb == 0.0
            && self.vault_fail_prob == 0.0
            && self.unavail_windows == 0
            && (self.throttle_windows == 0 || self.throttle_factor == 1.0)
            && self.drop_prob == 0.0
            && self.dup_prob == 0.0
    }

    /// Validate ranges, returning [`DmpimError::InvalidConfig`] on nonsense.
    pub fn validate(&self) -> Result<(), DmpimError> {
        fn prob(name: &str, p: f64) -> Result<(), DmpimError> {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(DmpimError::invalid_config(format!("{name} must be in [0, 1], got {p}")));
            }
            Ok(())
        }
        prob("vault_fail_prob", self.vault_fail_prob)?;
        prob("drop_prob", self.drop_prob)?;
        prob("dup_prob", self.dup_prob)?;
        prob("ecc.uncorrectable_fraction", self.ecc.uncorrectable_fraction)?;
        if self.bit_flips_per_gb.is_nan() || self.bit_flips_per_gb < 0.0 {
            return Err(DmpimError::invalid_config("bit_flips_per_gb must be non-negative"));
        }
        if self.throttle_factor.is_nan() || self.throttle_factor < 1.0 {
            return Err(DmpimError::invalid_config(format!(
                "throttle_factor must be >= 1.0, got {}",
                self.throttle_factor
            )));
        }
        if self.vaults == 0 {
            return Err(DmpimError::invalid_config("vaults must be nonzero"));
        }
        if self.horizon_ps == 0 && (self.unavail_windows > 0 || self.throttle_windows > 0) {
            return Err(DmpimError::invalid_config("windowed events need a nonzero horizon"));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Channel-level fault knobs, embedded in `pim-memsim`'s configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFaultConfig {
    /// Probability a transaction is dropped and retransmitted.
    pub drop_prob: f64,
    /// Probability a transaction is duplicated.
    pub dup_prob: f64,
    /// Seed for the channel's private draw stream.
    pub seed: u64,
}

/// One scheduled (windowed) event of a plan, for reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Event class.
    pub kind: FaultKind,
    /// Start of the window (or failure instant), in ps.
    pub at_ps: Ps,
    /// End of the window; equals `at_ps` for point events.
    pub end_ps: Ps,
    /// Vault index for vault failures, otherwise 0.
    pub vault: u32,
}

/// Running counters of what a plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Raw bit-flip events drawn.
    pub bit_flips: u64,
    /// Flips corrected by ECC.
    pub corrected: u64,
    /// Detected-uncorrectable flip events.
    pub uncorrectable: u64,
    /// Flips that went undetected (ECC disabled): silent corruption.
    pub silent: u64,
    /// Accesses refused because the PIM logic was unavailable.
    pub unavail_hits: u64,
    /// Accesses that touched a failed vault.
    pub vault_hits: u64,
    /// Simulated time spent under thermal throttle, in ps.
    pub throttled_ps: Ps,
}

impl FaultStats {
    /// Hand-rolled JSON rendering (this crate sits at the bottom of the
    /// workspace and stays dependency-free, so no JSON helper is used).
    /// Field order is fixed, so the output is byte-deterministic.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bit_flips\":{},\"corrected\":{},\"uncorrectable\":{},\"silent\":{},\
             \"unavail_hits\":{},\"vault_hits\":{},\"throttled_ps\":{}}}",
            self.bit_flips,
            self.corrected,
            self.uncorrectable,
            self.silent,
            self.unavail_hits,
            self.vault_hits,
            self.throttled_ps,
        )
    }

    /// Merge another set of counters into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.bit_flips += other.bit_flips;
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
        self.silent += other.silent;
        self.unavail_hits += other.unavail_hits;
        self.vault_hits += other.vault_hits;
        self.throttled_ps += other.throttled_ps;
    }
}

/// Outcome of drawing DRAM faults for one access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramFaultOutcome {
    /// Events ECC corrected; charge `corrected * ecc.correction_ps`.
    pub corrected: u64,
    /// Whether a detected-uncorrectable event occurred (transient fault).
    pub uncorrectable: bool,
}

/// A materialized fault schedule plus its per-access draw streams.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
    /// `(vault, fails_at_ps)` for vaults that fail inside the horizon.
    vault_failures: Vec<(u32, Ps)>,
    /// Sorted, disjoint `[start, end)` PIM-unavailability windows.
    unavail: Vec<(Ps, Ps)>,
    /// Sorted, disjoint `[start, end)` thermal-throttle windows.
    throttle: Vec<(Ps, Ps)>,
    /// Stream for per-access DRAM draws (salted per attempt).
    access_rng: SplitMix64,
    /// Carry of expected-flip mass below one event.
    flip_accum: f64,
    /// Offset added to attempt-local time to get world time: failed
    /// attempts and backoff advance the world clock, so a retry can
    /// outlive an unavailability window.
    world_offset_ps: Ps,
    stats: FaultStats,
}

impl FaultPlan {
    /// Build a plan; windowed events are drawn immediately from `seed`.
    pub fn new(config: FaultConfig, seed: u64) -> Result<Self, DmpimError> {
        config.validate()?;
        let mut world = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut vault_failures = Vec::new();
        for v in 0..config.vaults {
            if world.chance(config.vault_fail_prob) {
                vault_failures.push((v, world.next_below(config.horizon_ps.max(1))));
            }
        }
        let draw_windows = |rng: &mut SplitMix64, n: u32, len: Ps, horizon: Ps| -> Vec<(Ps, Ps)> {
            let mut w: Vec<(Ps, Ps)> = (0..n)
                .map(|_| {
                    let start = rng.next_below(horizon.max(1));
                    (start, start.saturating_add(len))
                })
                .collect();
            w.sort_unstable();
            // Merge overlaps so queries are a simple scan.
            let mut merged: Vec<(Ps, Ps)> = Vec::with_capacity(w.len());
            for (s, e) in w {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            merged
        };
        let unavail =
            draw_windows(&mut world, config.unavail_windows, config.unavail_window_ps, config.horizon_ps);
        let throttle =
            draw_windows(&mut world, config.throttle_windows, config.throttle_window_ps, config.horizon_ps);
        Ok(Self {
            config,
            seed,
            vault_failures,
            unavail,
            throttle,
            access_rng: SplitMix64::new(seed ^ 0xBF58_476D_1CE4_E5B9),
            flip_accum: 0.0,
            world_offset_ps: 0,
            stats: FaultStats::default(),
        })
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Reset the per-access draw stream for a retry attempt. Windowed
    /// events stay fixed (they are world state); only transient draws are
    /// resalted, so a retry can succeed where the first attempt failed.
    pub fn start_attempt(&mut self, attempt: u64) {
        self.access_rng = SplitMix64::new(self.seed ^ 0xBF58_476D_1CE4_E5B9 ^ attempt.wrapping_mul(0x94D0_49BB_1331_11EB));
        self.flip_accum = 0.0;
    }

    /// Set the world-time offset of the current attempt (total simulated
    /// time consumed by earlier failed attempts plus backoff).
    pub fn set_world_offset(&mut self, offset_ps: Ps) {
        self.world_offset_ps = offset_ps;
    }

    /// The world-time offset currently in effect.
    pub fn world_offset(&self) -> Ps {
        self.world_offset_ps
    }

    /// The full windowed schedule, sorted by start time. Per-access draws
    /// are not part of the schedule (they depend on traffic).
    pub fn schedule(&self) -> Vec<FaultEvent> {
        let mut ev: Vec<FaultEvent> = Vec::new();
        for &(vault, at) in &self.vault_failures {
            ev.push(FaultEvent { kind: FaultKind::VaultFailure, at_ps: at, end_ps: at, vault });
        }
        for &(s, e) in &self.unavail {
            ev.push(FaultEvent { kind: FaultKind::PimUnavailable, at_ps: s, end_ps: e, vault: 0 });
        }
        for &(s, e) in &self.throttle {
            ev.push(FaultEvent { kind: FaultKind::ThermalThrottle, at_ps: s, end_ps: e, vault: 0 });
        }
        ev.sort_unstable_by_key(|e| (e.at_ps, e.kind.label(), e.vault));
        ev
    }

    /// Vault an address maps to (256 B interleave across the stack, as in
    /// the stacked model).
    pub fn vault_of(&self, addr: u64) -> u32 {
        ((addr >> 8) % self.config.vaults as u64) as u32
    }

    /// Whether `addr` lives in a vault that has failed by attempt-local
    /// time `now`.
    pub fn vault_failed(&mut self, addr: u64, now: Ps) -> bool {
        let world = now.saturating_add(self.world_offset_ps);
        let v = self.vault_of(addr);
        let hit = self.vault_failures.iter().any(|&(fv, at)| fv == v && world >= at);
        if hit {
            self.stats.vault_hits += 1;
        }
        hit
    }

    /// If the PIM logic layer is unavailable at attempt-local `now`,
    /// return how long (ps) until the window ends.
    pub fn pim_unavailable(&mut self, now: Ps) -> Option<Ps> {
        let world = now.saturating_add(self.world_offset_ps);
        for &(s, e) in &self.unavail {
            if (s..e).contains(&world) {
                self.stats.unavail_hits += 1;
                return Some(e - world);
            }
            if s > world {
                break;
            }
        }
        None
    }

    /// Thermal slowdown factor in effect at attempt-local `now` (1.0 when
    /// not throttled).
    pub fn throttle_factor(&self, now: Ps) -> f64 {
        let world = now.saturating_add(self.world_offset_ps);
        for &(s, e) in &self.throttle {
            if (s..e).contains(&world) {
                return self.config.throttle_factor;
            }
            if s > world {
                break;
            }
        }
        1.0
    }

    /// Record `ps` of execution spent under throttle (bookkeeping only).
    pub fn note_throttled(&mut self, ps: Ps) {
        self.stats.throttled_ps += ps;
    }

    /// Draw DRAM bit-flip events for `dram_bytes` of array traffic.
    ///
    /// Expected events accumulate fractionally across accesses, so small
    /// accesses are not immune; draws consume the per-attempt stream.
    pub fn draw_dram_faults(&mut self, dram_bytes: u64) -> DramFaultOutcome {
        let mut out = DramFaultOutcome::default();
        if self.config.bit_flips_per_gb == 0.0 || dram_bytes == 0 {
            return out;
        }
        self.flip_accum += dram_bytes as f64 / (1u64 << 30) as f64 * self.config.bit_flips_per_gb;
        // Leaky bucket: one event per unit of expected mass, so the event
        // *count* is a deterministic function of traffic; only the ECC
        // classification below consumes the attempt-salted stream (which is
        // what lets a retry outlive a transient uncorrectable hit).
        while self.flip_accum >= 1.0 {
            self.flip_accum -= 1.0;
            self.stats.bit_flips += 1;
            if !self.config.ecc.enabled {
                self.stats.silent += 1;
            } else if self.access_rng.chance(self.config.ecc.uncorrectable_fraction) {
                self.stats.uncorrectable += 1;
                out.uncorrectable = true;
            } else {
                self.stats.corrected += 1;
                out.corrected += 1;
            }
        }
        out
    }

    /// Counters of everything injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

/// Bounds on simulation-loop progress. A tripped watchdog surfaces as
/// [`DmpimError::WatchdogTimeout`] instead of a hung process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Watchdog {
    /// Maximum simulated time a single run may consume, in ps.
    pub max_sim_ps: Option<Ps>,
    /// Maximum host-side events (accesses + op retirements) per run.
    pub max_host_events: Option<u64>,
}

impl Watchdog {
    /// No bounds (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Bound both simulated time and host events.
    pub fn new(max_sim_ps: Ps, max_host_events: u64) -> Self {
        Self { max_sim_ps: Some(max_sim_ps), max_host_events: Some(max_host_events) }
    }

    /// Whether any bound is configured.
    pub fn is_armed(&self) -> bool {
        self.max_sim_ps.is_some() || self.max_host_events.is_some()
    }

    /// Check the bounds against the current counters.
    pub fn check(&self, now_ps: Ps, host_events: u64) -> Result<(), DmpimError> {
        if let Some(limit) = self.max_sim_ps {
            if now_ps > limit {
                return Err(DmpimError::WatchdogTimeout { what: "simulated time", limit, at_ps: now_ps });
            }
        }
        if let Some(limit) = self.max_host_events {
            if host_events > limit {
                return Err(DmpimError::WatchdogTimeout { what: "host events", limit, at_ps: now_ps });
            }
        }
        Ok(())
    }

    /// How many consecutive events pass the watchdog, for batched engines.
    ///
    /// Event `i` (0-based) is checked with counters
    /// `(now_ps + i * step_ps, host_events + i + 1)` — the same sequence a
    /// scalar loop produces when every event advances simulated time by
    /// `step_ps` *after* its check. Returns the largest `n` such that
    /// events `0..n` all pass; `0` means the very next check trips.
    pub fn allowance(&self, now_ps: Ps, host_events: u64, step_ps: Ps) -> u64 {
        let mut n = u64::MAX;
        if let Some(limit) = self.max_host_events {
            n = n.min(limit.saturating_sub(host_events));
        }
        if let Some(limit) = self.max_sim_ps {
            if now_ps > limit {
                return 0;
            }
            // Event i passes iff now + i*step <= limit.
            if let Some(extra) = (limit - now_ps).checked_div(step_ps) {
                n = n.min(extra + 1);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_config_injects_nothing() {
        let mut p = FaultPlan::new(FaultConfig::none(), 42).unwrap();
        assert!(p.schedule().is_empty());
        assert!(!p.vault_failed(0xdead_beef, 1 << 40));
        assert!(p.pim_unavailable(123).is_none());
        assert_eq!(p.throttle_factor(123), 1.0);
        assert_eq!(p.draw_dram_faults(1 << 30), DramFaultOutcome::default());
        assert_eq!(*p.stats(), FaultStats::default());
        assert!(FaultConfig::none().is_zero());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::with_rate(0.8);
        let a = FaultPlan::new(cfg, 7).unwrap();
        let b = FaultPlan::new(cfg, 7).unwrap();
        assert_eq!(a.schedule(), b.schedule());
        let c = FaultPlan::new(cfg, 8).unwrap();
        // Different seeds should (overwhelmingly) differ for a hot config.
        assert_ne!(a.schedule(), c.schedule());
    }

    #[test]
    fn flips_scale_with_traffic() {
        let cfg = FaultConfig { bit_flips_per_gb: 100.0, ..FaultConfig::none() };
        let mut p = FaultPlan::new(cfg, 3).unwrap();
        for _ in 0..64 {
            p.draw_dram_faults(1 << 24); // 1 GiB total => ~100 events
        }
        let n = p.stats().bit_flips;
        assert!((40..250).contains(&n), "drew {n} flips");
        assert_eq!(p.stats().corrected + p.stats().uncorrectable, n);
    }

    #[test]
    fn ecc_disabled_means_silent_corruption() {
        let cfg = FaultConfig {
            bit_flips_per_gb: 100.0,
            ecc: EccConfig { enabled: false, ..EccConfig::default() },
            ..FaultConfig::none()
        };
        let mut p = FaultPlan::new(cfg, 3).unwrap();
        let out = p.draw_dram_faults(1 << 30);
        assert!(!out.uncorrectable);
        assert_eq!(out.corrected, 0);
        assert!(p.stats().silent > 0);
    }

    #[test]
    fn world_offset_outlives_windows() {
        let cfg = FaultConfig {
            unavail_windows: 3,
            unavail_window_ps: 1_000_000,
            horizon_ps: 10_000_000,
            ..FaultConfig::none()
        };
        let mut p = FaultPlan::new(cfg, 11).unwrap();
        let first = p.schedule().first().copied().unwrap();
        assert_eq!(first.kind, FaultKind::PimUnavailable);
        assert!(p.pim_unavailable(first.at_ps).is_some());
        // Push world time past the horizon: every window is behind us.
        p.set_world_offset(20_000_000);
        assert!(p.pim_unavailable(0).is_none());
    }

    #[test]
    fn retry_salt_changes_draws_but_not_schedule() {
        let cfg = FaultConfig::with_rate(1.0);
        let mut p = FaultPlan::new(cfg, 5).unwrap();
        let sched = p.schedule();
        p.start_attempt(0);
        let a: Vec<u64> = (0..8).map(|_| p.draw_dram_faults(1 << 28).corrected).collect();
        p.start_attempt(1);
        let b: Vec<u64> = (0..8).map(|_| p.draw_dram_faults(1 << 28).corrected).collect();
        p.start_attempt(0);
        let a2: Vec<u64> = (0..8).map(|_| p.draw_dram_faults(1 << 28).corrected).collect();
        assert_eq!(a, a2, "same attempt salt must reproduce draws");
        assert_ne!(a, b, "different salt should differ at rate 1.0");
        assert_eq!(p.schedule(), sched, "schedule is attempt-invariant");
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(FaultConfig { vault_fail_prob: 1.5, ..FaultConfig::none() }.validate().is_err());
        assert!(FaultConfig { throttle_factor: 0.5, ..FaultConfig::none() }.validate().is_err());
        assert!(FaultConfig { vaults: 0, ..FaultConfig::none() }.validate().is_err());
        assert!(FaultConfig { bit_flips_per_gb: -1.0, ..FaultConfig::none() }.validate().is_err());
        assert!(FaultConfig::with_rate(0.5).validate().is_ok());
    }

    #[test]
    fn watchdog_trips_on_either_bound() {
        let w = Watchdog::new(1_000, 10);
        assert!(w.check(999, 9).is_ok());
        assert!(matches!(
            w.check(1_001, 0),
            Err(DmpimError::WatchdogTimeout { what: "simulated time", .. })
        ));
        assert!(matches!(
            w.check(0, 11),
            Err(DmpimError::WatchdogTimeout { what: "host events", .. })
        ));
        assert!(!Watchdog::unlimited().is_armed());
        assert!(Watchdog::unlimited().check(u64::MAX, u64::MAX).is_ok());
    }

    #[test]
    fn fault_stats_json_is_stable() {
        let s = FaultStats { bit_flips: 3, corrected: 2, uncorrectable: 1, ..Default::default() };
        assert_eq!(
            s.to_json(),
            "{\"bit_flips\":3,\"corrected\":2,\"uncorrectable\":1,\"silent\":0,\
             \"unavail_hits\":0,\"vault_hits\":0,\"throttled_ps\":0}"
        );
        assert_eq!(s.to_json(), s.to_json());
    }
}
