//! Fault-injection and resilience layer for the PIM simulator.
//!
//! The ASPLOS'18 study assumes the logic layer of the 3D-stacked memory
//! always works. Real consumer devices do not: DRAM cells take transient
//! bit flips, vaults fail, the logic layer thermally throttles, and links
//! drop or duplicate transactions. The PIM-adoption literature (Mutlu et
//! al., *Enabling Practical Processing in and near Memory*; Oliveira et
//! al., *Methodologies, Workloads, and Tools for Processing-in-Memory*)
//! names runtime fallback and reliability as first-class adoption
//! barriers, so a simulator aiming at production scale has to model them.
//!
//! This crate is the dependency-free base layer the rest of the workspace
//! builds on:
//!
//! * [`DmpimError`] — the workspace-wide error type (config validation,
//!   capacity limits, corrupt data, injected faults, watchdog timeouts),
//! * [`SplitMix64`] — the deterministic PRNG every synthetic input and
//!   every fault draw uses,
//! * [`FaultConfig`] / [`FaultPlan`] — a seeded, reproducible schedule of
//!   injectable events with a simple ECC detect/correct model,
//! * [`Watchdog`] — bounds on simulated time and host-side event counts so
//!   a buggy kernel returns [`DmpimError::WatchdogTimeout`] instead of
//!   hanging the simulation loop.
//!
//! Determinism is the design invariant: the same seed and configuration
//! always produce the same fault schedule, so experiments that sweep fault
//! rates are exactly reproducible (see `tests/fault_injection.rs` at the
//! workspace root).

pub mod error;
pub mod plan;
pub mod rng;

pub use error::{DmpimError, FaultKind};
pub use plan::{
    ChannelFaultConfig, DramFaultOutcome, EccConfig, FaultConfig, FaultEvent, FaultPlan,
    FaultStats, Watchdog,
};
pub use rng::SplitMix64;

/// Picosecond time stamp used across all clock domains.
///
/// This is the authoritative definition; `pim-memsim` re-exports it.
pub type Ps = u64;
