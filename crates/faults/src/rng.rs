//! Deterministic PRNG for synthetic workload inputs.
//!
//! Every synthetic input in the reproduction (web-page content, video
//! frames, matrices, tab footprints) must be reproducible across runs and
//! platforms so `EXPERIMENTS.md` numbers are stable. SplitMix64 is tiny,
//! fast, and statistically adequate for workload generation (it is the
//! seeding generator of the xoshiro family).

/// A SplitMix64 pseudo-random number generator.
///
/// ```
/// use pim_faults::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift reduction; bias is negligible for workload synthesis.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Next value in `[lo, hi)`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_stay_in_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.next_range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(3);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
