//! The 4x4 Walsh–Hadamard transform and uniform quantization.
//!
//! VP9 uses integer DCT approximations for lossy blocks and the 4x4
//! Walsh–Hadamard transform (WHT) in lossless mode. The reproduction uses
//! the WHT everywhere: it is orthogonal with an exact integer inverse
//! (`inverse(forward(x)) == x`), which lets the encoder's reconstruction
//! and the decoder's output be bit-identical — the invariant the
//! integration tests pin down.

/// A 4x4 block of residuals or coefficients.
pub type Block4 = [i32; 16];

fn butterfly(v: [i32; 4]) -> [i32; 4] {
    let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
    [a + b + c + d, a + b - c - d, a - b - c + d, a - b + c - d]
}

/// Forward 4x4 WHT: `Y = H X Hᵀ` with `H` the order-4 Hadamard matrix.
///
/// Output coefficients are 16x the input scale (undone exactly by
/// [`inverse4x4`]).
pub fn forward4x4(block: &Block4) -> Block4 {
    let mut tmp = [0i32; 16];
    for r in 0..4 {
        let row = butterfly([block[r * 4], block[r * 4 + 1], block[r * 4 + 2], block[r * 4 + 3]]);
        tmp[r * 4..r * 4 + 4].copy_from_slice(&row);
    }
    let mut out = [0i32; 16];
    for c in 0..4 {
        let col = butterfly([tmp[c], tmp[4 + c], tmp[8 + c], tmp[12 + c]]);
        for r in 0..4 {
            out[r * 4 + c] = col[r];
        }
    }
    out
}

/// Inverse 4x4 WHT.
///
/// Exact on anything produced by [`forward4x4`] (outputs there are
/// multiples of 16); on quantized coefficients the division rounds, and
/// because encoder and decoder run this identical function on identical
/// dequantized inputs, reconstructions stay bit-identical.
pub fn inverse4x4(coeffs: &Block4) -> Block4 {
    let mut out = forward4x4(coeffs);
    for v in &mut out {
        *v = (*v + 8) >> 4;
    }
    out
}

/// Uniform quantizer step for a quality index `q` in `0..=63`.
///
/// Step 1 at `q = 0` is lossless (the WHT is integer-exact).
pub fn quant_step(q: u8) -> i32 {
    1 + 2 * q.min(63) as i32
}

/// Quantize coefficients in place with rounding toward nearest.
pub fn quantize(coeffs: &mut Block4, step: i32) {
    assert!(step >= 1, "step must be >= 1");
    for c in coeffs.iter_mut() {
        let sign = if *c < 0 { -1 } else { 1 };
        *c = sign * ((c.abs() + step / 2) / step);
    }
}

/// Dequantize (multiply back by the step).
pub fn dequantize(coeffs: &mut Block4, step: i32) {
    for c in coeffs.iter_mut() {
        *c *= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::rng::SplitMix64;

    fn random_block(seed: u64, range: i32) -> Block4 {
        let mut rng = SplitMix64::new(seed);
        let mut b = [0i32; 16];
        for v in &mut b {
            *v = rng.next_below(2 * range as u64 + 1) as i32 - range;
        }
        b
    }

    #[test]
    fn forward_inverse_roundtrip_exact() {
        for seed in 0..50 {
            let b = random_block(seed, 255);
            assert_eq!(inverse4x4(&forward4x4(&b)), b, "seed {seed}");
        }
    }

    #[test]
    fn dc_block_concentrates_energy() {
        let b = [7i32; 16];
        let f = forward4x4(&b);
        assert_eq!(f[0], 7 * 16);
        assert!(f[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn transform_is_linear() {
        let a = random_block(1, 100);
        let b = random_block(2, 100);
        let mut sum = [0i32; 16];
        for i in 0..16 {
            sum[i] = a[i] + b[i];
        }
        let fa = forward4x4(&a);
        let fb = forward4x4(&b);
        let fsum = forward4x4(&sum);
        for i in 0..16 {
            assert_eq!(fsum[i], fa[i] + fb[i]);
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        for seed in 0..20 {
            let b = random_block(seed, 4000);
            let step = quant_step(25);
            let mut q = b;
            quantize(&mut q, step);
            dequantize(&mut q, step);
            for (orig, rec) in b.iter().zip(q.iter()) {
                assert!((orig - rec).abs() <= step / 2 + 1, "{orig} vs {rec}");
            }
        }
    }

    #[test]
    fn step_one_is_lossless() {
        let b = random_block(9, 2000);
        let mut q = b;
        quantize(&mut q, 1);
        dequantize(&mut q, 1);
        assert_eq!(q, b);
    }

    #[test]
    fn quant_step_monotone() {
        assert_eq!(quant_step(0), 1);
        for q in 1..=63u8 {
            assert!(quant_step(q) > quant_step(q - 1));
        }
        assert_eq!(quant_step(63), quant_step(200)); // clamped
    }
}
