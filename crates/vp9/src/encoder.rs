//! The VP9-style encoder pipeline (paper Figure 14).
//!
//! Per 16x16 macro-block: motion estimation against up to three reference
//! frames (or flat intra prediction on keyframes), residual transform
//! (4x4 WHT), quantization, boolean-coder entropy coding, and in-loop
//! reconstruction so the encoder and decoder share bit-identical
//! reference frames. The reconstructed frame is deblocked before becoming
//! a reference, exactly as the decoder will deblock its output.

use crate::deblock::{deblock_plane, DeblockStats};
use crate::entropy::{write_coeffs, write_mv_component, BoolWriter};
use crate::frame::Plane;
use crate::mc::{predict_block, reconstruct, residual};
use crate::me::{motion_search, MotionVector, SearchStats};
use crate::transform::{dequantize, forward4x4, inverse4x4, quant_step, quantize, Block4};

/// Macro-block edge, in pixels.
pub const MB: usize = 16;

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Quality index, `0..=63` (0 = lossless).
    pub q: u8,
    /// Motion-search range in pixels.
    pub range: i32,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self { q: 12, range: 16 }
    }
}

/// An encoded frame: the bitstream plus its header facts.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// The boolean-coded bitstream.
    pub data: Vec<u8>,
    /// Whether this is a keyframe (no references).
    pub keyframe: bool,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Quality index used.
    pub q: u8,
}

/// What the encoder did (drives the instrumented drivers and tests).
#[derive(Debug, Clone, Default)]
pub struct EncodeStats {
    /// Motion-search statistics summed over all macro-blocks.
    pub search: SearchStats,
    /// Chosen `(reference index, motion vector)` per macro-block.
    pub mvs: Vec<(usize, MotionVector)>,
    /// Macro-blocks encoded.
    pub macroblocks: u64,
    /// 4x4 blocks with at least one nonzero quantized coefficient.
    pub coded_blocks: u64,
    /// Macro-blocks whose vector has a sub-pel component.
    pub subpel_mbs: u64,
    /// Loop-filter statistics of the in-loop reconstruction.
    pub deblock: DeblockStats,
}

/// Encode one frame against `refs` (empty slice = keyframe).
///
/// Returns the bitstream, the reconstructed (deblocked) frame that must be
/// used as the reference for the next frame, and statistics.
///
/// # Panics
///
/// Panics if the frame dimensions are not multiples of 16, or if more
/// than 4 references are supplied.
pub fn encode_frame(cur: &Plane, refs: &[&Plane], cfg: EncoderConfig) -> (EncodedFrame, Plane, EncodeStats) {
    assert!(cur.width().is_multiple_of(MB) && cur.height().is_multiple_of(MB), "frame must be MB-aligned");
    assert!(refs.len() <= 4, "at most 4 reference frames");
    let (w, h) = (cur.width(), cur.height());
    let keyframe = refs.is_empty();
    let step = quant_step(cfg.q);

    let mut writer = BoolWriter::new();
    // Header: keyframe, q, dimensions in MBs.
    writer.put_literal(keyframe as u32, 1);
    writer.put_literal(cfg.q as u32, 6);
    writer.put_literal((w / MB) as u32, 10);
    writer.put_literal((h / MB) as u32, 10);

    let mut recon = Plane::new(w, h);
    let mut stats = EncodeStats::default();

    for my in (0..h).step_by(MB) {
        for mx in (0..w).step_by(MB) {
            stats.macroblocks += 1;
            // Prediction.
            let (ref_idx, mv, pred) = if keyframe {
                (0, MotionVector::default(), vec![128u8; MB * MB])
            } else {
                let (idx, mv, _, s) = motion_search(cur, refs, mx, my, MB, cfg.range);
                stats.search.integer_candidates += s.integer_candidates;
                stats.search.subpel_candidates += s.subpel_candidates;
                (idx, mv, predict_block(refs[idx], mx, my, MB, mv))
            };
            if !keyframe {
                writer.put_literal(ref_idx as u32, 2);
                write_mv_component(&mut writer, mv.x8);
                write_mv_component(&mut writer, mv.y8);
                if mv.is_subpel() {
                    stats.subpel_mbs += 1;
                }
            }
            stats.mvs.push((ref_idx, mv));

            // Source pixels and residual for the whole MB.
            let mut src = vec![0u8; MB * MB];
            for dy in 0..MB {
                for dx in 0..MB {
                    src[dy * MB + dx] = cur.pixel(mx + dx, my + dy);
                }
            }
            let res = residual(&src, &pred);

            // Transform/quantize/code each 4x4, reconstructing as we go.
            let mut rec_res = vec![0i32; MB * MB];
            for by in (0..MB).step_by(4) {
                for bx in (0..MB).step_by(4) {
                    let mut block: Block4 = [0; 16];
                    for y in 0..4 {
                        for x in 0..4 {
                            block[y * 4 + x] = res[(by + y) * MB + bx + x];
                        }
                    }
                    let mut coeffs = forward4x4(&block);
                    quantize(&mut coeffs, step);
                    write_coeffs(&mut writer, &coeffs);
                    if coeffs.iter().any(|&c| c != 0) {
                        stats.coded_blocks += 1;
                    }
                    dequantize(&mut coeffs, step);
                    let rec = inverse4x4(&coeffs);
                    for y in 0..4 {
                        for x in 0..4 {
                            rec_res[(by + y) * MB + bx + x] = rec[y * 4 + x];
                        }
                    }
                }
            }
            let rec_px = reconstruct(&pred, &rec_res);
            for dy in 0..MB {
                for dx in 0..MB {
                    recon.set_pixel(mx + dx, my + dy, rec_px[dy * MB + dx]);
                }
            }
        }
    }

    // In-loop deblocking: part of the reconstruction both sides perform.
    stats.deblock = deblock_plane(&mut recon, 8);

    let frame = EncodedFrame { data: writer.finish(), keyframe, width: w, height: h, q: cfg.q };
    (frame, recon, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SyntheticVideo;

    #[test]
    fn keyframe_round_trips_through_reconstruction() {
        let src = SyntheticVideo::new(64, 48, 0, 1).frame(0);
        let (frame, recon, stats) = encode_frame(&src, &[], EncoderConfig { q: 4, range: 8 });
        assert!(frame.keyframe);
        assert_eq!(stats.macroblocks, 12);
        assert!(recon.psnr(&src) > 34.0, "psnr {}", recon.psnr(&src));
        assert!(!frame.data.is_empty());
    }

    #[test]
    fn lossless_keyframe_is_exact_before_deblock() {
        // q=0 (step 1): reconstruction differs from source only where the
        // loop filter touched block edges.
        let src = SyntheticVideo::new(32, 32, 0, 2).frame(0);
        let (_, recon, _) = encode_frame(&src, &[], EncoderConfig { q: 0, range: 8 });
        assert!(recon.psnr(&src) > 44.0, "psnr {}", recon.psnr(&src));
    }

    #[test]
    fn inter_frame_is_cheaper_than_keyframe() {
        let v = SyntheticVideo::new(64, 64, 0, 3);
        let f0 = v.frame(0);
        let f1 = v.frame(1);
        let cfg = EncoderConfig::default();
        let (key, recon0, _) = encode_frame(&f0, &[], cfg);
        let (inter, _, stats) = encode_frame(&f1, &[&recon0], cfg);
        assert!(
            inter.data.len() < key.data.len(),
            "inter {} vs key {}",
            inter.data.len(),
            key.data.len()
        );
        // Panning content: most MBs should use sub-pel vectors.
        assert!(stats.subpel_mbs * 2 > stats.macroblocks, "{stats:?}");
    }

    #[test]
    fn bitstream_is_much_smaller_than_raw() {
        let v = SyntheticVideo::new(96, 96, 0, 4);
        let f0 = v.frame(0);
        let (key, recon0, _) = encode_frame(&f0, &[], EncoderConfig::default());
        let (inter, _, _) = encode_frame(&v.frame(1), &[&recon0], EncoderConfig::default());
        let raw = (96 * 96) as usize;
        assert!(key.data.len() < raw, "key {} vs raw {raw}", key.data.len());
        assert!(inter.data.len() < raw / 4, "inter {} vs raw {raw}", inter.data.len());
    }

    #[test]
    #[should_panic(expected = "MB-aligned")]
    fn unaligned_frame_panics() {
        let p = Plane::new(60, 64);
        encode_frame(&p, &[], EncoderConfig::default());
    }
}
