//! Diamond-search motion estimation (paper §7.2.2).
//!
//! libvpx locates matching blocks with the diamond search of Zhu & Ma,
//! scoring candidates by the sum of absolute differences (SAD). The
//! encoder checks up to three reference frames per macro-block, which is
//! what makes ME the dominant source of encoder data movement (§7.2.1).

use crate::frame::Plane;
use crate::interp::interpolate_block_into;

/// A motion vector in 1/8-pel units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Horizontal component (1/8-pel).
    pub x8: i32,
    /// Vertical component (1/8-pel).
    pub y8: i32,
}

impl MotionVector {
    /// Whether either component has a fractional (sub-pel) part.
    pub fn is_subpel(&self) -> bool {
        self.x8 % 8 != 0 || self.y8 % 8 != 0
    }
}

/// Counters describing one block's search (for op/traffic accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Integer-position candidates evaluated (each one SAD over the block).
    pub integer_candidates: u64,
    /// Sub-pel candidates evaluated (each one interpolation + SAD).
    pub subpel_candidates: u64,
}

/// Exact SAD of two 16-byte rows via SSE2 `psadbw`. A sum of absolute
/// differences is associative integer math, so this returns the same
/// value as the scalar reduction.
#[cfg(target_arch = "x86_64")]
#[inline]
fn sad_row16(a: &[u8], b: &[u8]) -> u64 {
    use std::arch::x86_64::*;
    assert!(a.len() >= 16 && b.len() >= 16);
    // SAFETY: lengths checked above; unaligned loads carry no alignment
    // requirement, and SSE2 is part of the x86_64 baseline.
    unsafe {
        let va = _mm_loadu_si128(a.as_ptr() as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr() as *const __m128i);
        let s = _mm_sad_epu8(va, vb);
        _mm_cvtsi128_si64(s) as u64 + _mm_extract_epi16::<4>(s) as u64
    }
}

/// SAD of one row pair (equal lengths).
#[inline]
fn row_sad(a: &[u8], b: &[u8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if a.len() == 16 && b.len() == 16 {
        return sad_row16(a, b);
    }
    a.iter().zip(b).map(|(x, y)| (*x as i64 - *y as i64).unsigned_abs()).sum()
}

/// SAD between the `bs` x `bs` block of `cur` at `(cx, cy)` and the
/// block of `reference` at integer offset `(rx, ry)` (edge-clamped).
pub fn sad(cur: &Plane, cx: usize, cy: usize, reference: &Plane, rx: isize, ry: isize, bs: usize) -> u64 {
    let rw = reference.width() as isize;
    let rh = reference.height() as isize;
    let interior_x = rx >= 0 && rx + bs as isize <= rw;
    let mut total = 0u64;
    for dy in 0..bs {
        let crow = &cur.row(cy + dy)[cx..cx + bs];
        let ry = (ry + dy as isize).clamp(0, rh - 1) as usize;
        let rrow = reference.row(ry);
        if interior_x {
            // All reference columns in-frame: compare row slices directly.
            total += row_sad(crow, &rrow[rx as usize..rx as usize + bs]);
        } else {
            for (dx, a) in crow.iter().enumerate() {
                let b = rrow[(rx + dx as isize).clamp(0, rw - 1) as usize];
                total += (*a as i64 - b as i64).unsigned_abs();
            }
        }
    }
    total
}

/// Reusable interpolation scratch for sub-pel SAD evaluation.
#[derive(Default)]
struct SubpelScratch {
    tmp: Vec<i16>,
    pred: Vec<u8>,
}

fn sad_subpel(
    cur: &Plane,
    cx: usize,
    cy: usize,
    reference: &Plane,
    mv8: (i32, i32),
    bs: usize,
    scratch: &mut SubpelScratch,
) -> u64 {
    let (x8, y8) = mv8;
    interpolate_block_into(reference, x8 as isize, y8 as isize, bs, bs, &mut scratch.tmp, &mut scratch.pred);
    let pred = &scratch.pred;
    let mut total = 0u64;
    for dy in 0..bs {
        let crow = &cur.row(cy + dy)[cx..cx + bs];
        let prow = &pred[dy * bs..dy * bs + bs];
        total += row_sad(crow, prow);
    }
    total
}

/// Large/small diamond search at integer precision.
///
/// Returns the best integer motion vector (in pixels), its SAD, and the
/// search statistics. `range` bounds each component.
pub fn diamond_search(
    cur: &Plane,
    reference: &Plane,
    cx: usize,
    cy: usize,
    bs: usize,
    range: i32,
) -> (i32, i32, u64, SearchStats) {
    const LDSP: [(i32, i32); 8] =
        [(0, -2), (0, 2), (-2, 0), (2, 0), (-1, -1), (1, -1), (-1, 1), (1, 1)];
    const SDSP: [(i32, i32); 4] = [(0, -1), (0, 1), (-1, 0), (1, 0)];

    let mut stats = SearchStats::default();
    let mut best = (0i32, 0i32);
    let mut best_sad = sad(cur, cx, cy, reference, cx as isize, cy as isize, bs);
    stats.integer_candidates += 1;

    // Large diamond until the center wins.
    for _ in 0..range {
        let mut moved = false;
        for &(dx, dy) in &LDSP {
            let c = (best.0 + dx, best.1 + dy);
            if c.0.abs() > range || c.1.abs() > range {
                continue;
            }
            let s = sad(cur, cx, cy, reference, cx as isize + c.0 as isize, cy as isize + c.1 as isize, bs);
            stats.integer_candidates += 1;
            if s < best_sad {
                best_sad = s;
                best = c;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    // Small diamond refinement.
    for &(dx, dy) in &SDSP {
        let c = (best.0 + dx, best.1 + dy);
        if c.0.abs() > range || c.1.abs() > range {
            continue;
        }
        let s = sad(cur, cx, cy, reference, cx as isize + c.0 as isize, cy as isize + c.1 as isize, bs);
        stats.integer_candidates += 1;
        if s < best_sad {
            best_sad = s;
            best = c;
        }
    }
    (best.0, best.1, best_sad, stats)
}

/// Refine an integer motion vector to 1/8-pel by successive halving
/// (half, quarter, eighth), checking the plus-pattern at each step.
pub fn subpel_refine(
    cur: &Plane,
    reference: &Plane,
    cx: usize,
    cy: usize,
    bs: usize,
    int_mv: (i32, i32),
    base_sad: u64,
) -> (MotionVector, u64, SearchStats) {
    let mut stats = SearchStats::default();
    let mut best = MotionVector { x8: int_mv.0 * 8, y8: int_mv.1 * 8 };
    let mut best_sad = base_sad;
    let mut scratch = SubpelScratch::default();
    for step in [4, 2, 1] {
        for (dx, dy) in [(-step, 0), (step, 0), (0, -step), (0, step)] {
            let c = MotionVector { x8: best.x8 + dx, y8: best.y8 + dy };
            let s = sad_subpel(cur, cx, cy, reference, (cx as i32 * 8 + c.x8, cy as i32 * 8 + c.y8), bs, &mut scratch);
            stats.subpel_candidates += 1;
            if s < best_sad {
                best_sad = s;
                best = c;
            }
        }
    }
    (best, best_sad, stats)
}

/// Full search over multiple reference frames (§7.1: three references):
/// integer diamond search on every reference, then sub-pel refinement on
/// the winner only, as libvpx does.
pub fn motion_search(
    cur: &Plane,
    refs: &[&Plane],
    cx: usize,
    cy: usize,
    bs: usize,
    range: i32,
) -> (usize, MotionVector, u64, SearchStats) {
    assert!(!refs.is_empty(), "need at least one reference");
    let mut total = SearchStats::default();
    let mut best = (0usize, (0i32, 0i32), u64::MAX);
    for (i, reference) in refs.iter().enumerate() {
        let (ix, iy, isad, s1) = diamond_search(cur, reference, cx, cy, bs, range);
        total.integer_candidates += s1.integer_candidates;
        if isad < best.2 {
            best = (i, (ix, iy), isad);
        }
    }
    let (idx, int_mv, isad) = best;
    let (mv, sad, s2) = subpel_refine(cur, refs[idx], cx, cy, bs, int_mv, isad);
    total.subpel_candidates += s2.subpel_candidates;
    (idx, mv, sad, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SyntheticVideo;

    #[test]
    fn row_sad_matches_scalar_reduction() {
        let a: Vec<u8> = (0..16u32).map(|i| (i * 17 + 3) as u8).collect();
        let b: Vec<u8> = (0..16u32).map(|i| (250 - i * 13) as u8).collect();
        let want: u64 = a.iter().zip(&b).map(|(x, y)| (*x as i64 - *y as i64).unsigned_abs()).sum();
        assert_eq!(row_sad(&a, &b), want);
        assert_eq!(row_sad(&[0u8; 16], &[255u8; 16]), 16 * 255);
        assert_eq!(row_sad(&a[..8], &b[..8]), a[..8].iter().zip(&b[..8]).map(|(x, y)| (*x as i64 - *y as i64).unsigned_abs()).sum());
    }

    #[test]
    fn sad_of_identical_blocks_is_zero() {
        let p = SyntheticVideo::new(64, 64, 0, 1).frame(0);
        assert_eq!(sad(&p, 16, 16, &p, 16, 16, 16), 0);
        assert!(sad(&p, 16, 16, &p, 20, 20, 16) > 0);
    }

    #[test]
    fn diamond_finds_a_pure_translation() {
        // Shift a frame by (3, -2): the search must find (-3, 2)... i.e.
        // the offset that maps current back onto the reference.
        let v = SyntheticVideo::new(96, 96, 0, 7);
        let reference = v.frame(0);
        let mut cur = crate::frame::Plane::new(96, 96);
        for y in 0..96 {
            for x in 0..96 {
                cur.set_pixel(x, y, reference.pixel_clamped(x as isize + 3, y as isize - 2));
            }
        }
        let (dx, dy, s, stats) = diamond_search(&cur, &reference, 40, 40, 16, 16);
        assert_eq!((dx, dy), (3, -2));
        assert_eq!(s, 0);
        assert!(stats.integer_candidates > 5);
    }

    #[test]
    fn subpel_refinement_improves_sad_on_panning_video() {
        let v = SyntheticVideo::new(96, 96, 0, 3);
        let f0 = v.frame(0);
        let f1 = v.frame(1); // pan of (1.375, 0.625) px
        let (ix, iy, isad, _) = diamond_search(&f1, &f0, 40, 40, 16, 16);
        let (mv, ssad, _) = subpel_refine(&f1, &f0, 40, 40, 16, (ix, iy), isad);
        assert!(ssad <= isad);
        assert!(mv.is_subpel(), "pan should need a sub-pel mv: {mv:?}");
    }

    #[test]
    fn multi_ref_search_picks_the_closest_frame() {
        let v = SyntheticVideo::new(96, 96, 0, 5);
        let far = v.frame(0);
        let near = v.frame(3);
        let cur = v.frame(4);
        let (idx, _, _, stats) = motion_search(&cur, &[&far, &near], 40, 40, 16, 16);
        assert_eq!(idx, 1, "nearest reference should win");
        assert!(stats.integer_candidates > 10);
        assert_eq!(stats.subpel_candidates, 12); // best ref * 3 steps * 4
    }

    #[test]
    #[should_panic(expected = "at least one reference")]
    fn empty_refs_panics() {
        let p = crate::frame::Plane::new(32, 32);
        motion_search(&p, &[], 0, 0, 16, 8);
    }
}
