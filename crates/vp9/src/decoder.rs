//! The VP9-style decoder pipeline (paper Figure 9).
//!
//! Entropy decode → motion compensation (with sub-pixel interpolation) →
//! inverse quantization → inverse transform → reconstruction → deblocking
//! filter. Decoding a stream produced by [`crate::encoder::encode_frame`]
//! reproduces the encoder's reconstructed frame *bit-exactly* — the
//! invariant that keeps encoder and decoder references in lock step.

use crate::deblock::{deblock_plane, DeblockStats};
use crate::encoder::MB;
use crate::entropy::{read_coeffs, read_mv_component, BoolReader};
use crate::frame::Plane;
use crate::mc::{predict_block, reconstruct};
use crate::me::MotionVector;
use crate::transform::{dequantize, inverse4x4, quant_step};

/// A decoded frame plus decode-side statistics.
#[derive(Debug, Clone)]
pub struct DecodedFrame {
    /// The reconstructed, deblocked frame.
    pub plane: Plane,
    /// `(reference index, motion vector)` per macro-block (empty for
    /// keyframes).
    pub mvs: Vec<(usize, MotionVector)>,
    /// Macro-blocks whose vector needed sub-pixel interpolation.
    pub subpel_mbs: u64,
    /// 4x4 blocks carrying nonzero coefficients.
    pub coded_blocks: u64,
    /// Bitstream bytes consumed.
    pub bytes: usize,
    /// Loop-filter statistics.
    pub deblock: DeblockStats,
}

/// Decode error (corrupt or inconsistent stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid bitstream: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Decode one frame. `refs` must match the reference set the encoder used
/// (the reconstructed frames, in the same order).
///
/// # Errors
///
/// Returns [`DecodeError`] if the header is inconsistent with `refs` or
/// a reference index is out of range.
pub fn decode_frame(data: &[u8], refs: &[&Plane]) -> Result<DecodedFrame, DecodeError> {
    let mut r = BoolReader::new(data);
    let keyframe = r.get_literal(1) == 1;
    let q = r.get_literal(6) as u8;
    let mb_cols = r.get_literal(10) as usize;
    let mb_rows = r.get_literal(10) as usize;
    if mb_cols == 0 || mb_rows == 0 {
        return Err(DecodeError("empty frame"));
    }
    if mb_cols > 256 || mb_rows > 256 {
        return Err(DecodeError("frame larger than the 4K profile"));
    }
    if !keyframe && refs.is_empty() {
        return Err(DecodeError("inter frame without references"));
    }
    let (w, h) = (mb_cols * MB, mb_rows * MB);
    let step = quant_step(q);

    let mut plane = Plane::new(w, h);
    let mut mvs = Vec::new();
    let mut subpel_mbs = 0;
    let mut coded_blocks = 0;

    for my in (0..h).step_by(MB) {
        for mx in (0..w).step_by(MB) {
            let (pred, entry) = if keyframe {
                (vec![128u8; MB * MB], (0, MotionVector::default()))
            } else {
                let ref_idx = r.get_literal(2) as usize;
                if ref_idx >= refs.len() {
                    return Err(DecodeError("reference index out of range"));
                }
                let mv = MotionVector { x8: read_mv_component(&mut r), y8: read_mv_component(&mut r) };
                if mv.is_subpel() {
                    subpel_mbs += 1;
                }
                (predict_block(refs[ref_idx], mx, my, MB, mv), (ref_idx, mv))
            };
            mvs.push(entry);

            let mut res = vec![0i32; MB * MB];
            for by in (0..MB).step_by(4) {
                for bx in (0..MB).step_by(4) {
                    let mut coeffs = read_coeffs(&mut r);
                    if coeffs.iter().any(|&c| c != 0) {
                        coded_blocks += 1;
                    }
                    dequantize(&mut coeffs, step);
                    let rec = inverse4x4(&coeffs);
                    for y in 0..4 {
                        for x in 0..4 {
                            res[(by + y) * MB + bx + x] = rec[y * 4 + x];
                        }
                    }
                }
            }
            let px = reconstruct(&pred, &res);
            for dy in 0..MB {
                for dx in 0..MB {
                    plane.set_pixel(mx + dx, my + dy, px[dy * MB + dx]);
                }
            }
        }
    }

    let deblock = deblock_plane(&mut plane, 8);
    let bytes = r.consumed;
    Ok(DecodedFrame { plane, mvs, subpel_mbs, coded_blocks, bytes, deblock })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode_frame, EncoderConfig};
    use crate::frame::SyntheticVideo;

    #[test]
    fn decoder_matches_encoder_reconstruction_bit_exactly() {
        let v = SyntheticVideo::new(64, 48, 2, 6);
        let cfg = EncoderConfig::default();
        let f0 = v.frame(0);
        let (key, recon0, _) = encode_frame(&f0, &[], cfg);
        let d0 = decode_frame(&key.data, &[]).unwrap();
        assert_eq!(d0.plane, recon0, "keyframe mismatch");

        let (inter, recon1, stats) = encode_frame(&v.frame(1), &[&recon0], cfg);
        let d1 = decode_frame(&inter.data, &[&d0.plane]).unwrap();
        assert_eq!(d1.plane, recon1, "inter frame mismatch");
        assert_eq!(d1.mvs, stats.mvs);
        assert_eq!(d1.subpel_mbs, stats.subpel_mbs);
        assert_eq!(d1.coded_blocks, stats.coded_blocks);
    }

    #[test]
    fn three_reference_gop_stays_in_sync() {
        let v = SyntheticVideo::new(64, 64, 1, 8);
        let cfg = EncoderConfig { q: 16, range: 12 };
        let mut enc_refs: Vec<Plane> = Vec::new();
        let mut dec_refs: Vec<Plane> = Vec::new();
        for i in 0..5 {
            let src = v.frame(i);
            let er: Vec<&Plane> = enc_refs.iter().rev().take(3).collect();
            let (frame, recon, _) = encode_frame(&src, &er, cfg);
            let dr: Vec<&Plane> = dec_refs.iter().rev().take(3).collect();
            let dec = decode_frame(&frame.data, &dr).unwrap();
            assert_eq!(dec.plane, recon, "frame {i} diverged");
            enc_refs.push(recon);
            dec_refs.push(dec.plane);
        }
    }

    #[test]
    fn decoded_video_quality_is_reasonable() {
        let v = SyntheticVideo::new(96, 96, 0, 9);
        let cfg = EncoderConfig { q: 8, range: 16 };
        let (key, recon0, _) = encode_frame(&v.frame(0), &[], cfg);
        let _ = key;
        let (inter, _, _) = encode_frame(&v.frame(1), &[&recon0], cfg);
        let dec = decode_frame(&inter.data, &[&recon0]).unwrap();
        let psnr = dec.plane.psnr(&v.frame(1));
        assert!(psnr > 30.0, "psnr {psnr}");
    }

    #[test]
    fn inter_without_refs_errors() {
        let v = SyntheticVideo::new(32, 32, 0, 1);
        let (key, recon0, _) = encode_frame(&v.frame(0), &[], EncoderConfig::default());
        let _ = key;
        let (inter, _, _) = encode_frame(&v.frame(1), &[&recon0], EncoderConfig::default());
        assert!(decode_frame(&inter.data, &[]).is_err());
    }

    #[test]
    fn garbage_header_does_not_panic() {
        // All-0xFF and empty streams must fail or decode to *something*
        // without panicking.
        let _ = decode_frame(&[], &[]);
        let _ = decode_frame(&[0xFF; 64], &[]);
    }
}
