//! Instrumented software-codec runs and the Figure 20 PIM-target kernels.
//!
//! Following the paper's methodology (§9), each codec phase is replayed
//! through the simulation context with the *measured* parameters of a real
//! encode/decode of the synthetic clip: motion vectors, coded-block
//! counts, loop-filter activity and bitstream sizes all come from the
//! actual codec in [`crate::encoder`]/[`crate::decoder`], so the traffic
//! is the traffic the computation truly needed.

use std::sync::{Arc, OnceLock};
use std::thread;

use pim_core::{AccessKind, DmpimError, Kernel, OpMix, SimContext, Tracked};

use crate::deblock::{deblock_plane, DeblockStats};
use crate::decoder::decode_frame;
use crate::encoder::{encode_frame, EncoderConfig, MB};
use crate::frame::{Plane, SyntheticVideo, TrackedPlane};
use crate::interp::interpolate_block_into;
use crate::me::{motion_search, MotionVector, SearchStats};

/// Per-function energy/time shares of a software codec run
/// (Figures 10, 11 and 15).
#[derive(Debug, Clone)]
pub struct SwBreakdown {
    /// `(tag, fraction of total energy)` per category.
    pub energy_fractions: Vec<(String, f64)>,
    /// Whole-run data-movement fraction.
    pub dm_fraction: f64,
    /// Per-component totals for the Figure 11 panel.
    pub energy: pim_core::EnergyBreakdown,
    /// Fraction of execution time per category.
    pub time_fractions: Vec<(String, f64)>,
}

fn collect(ctx: &SimContext, tags: &[&str]) -> SwBreakdown {
    let total = ctx.total_energy();
    let total_ps = ctx.now_ps().max(1);
    let energy_fractions = tags
        .iter()
        .map(|&t| {
            let e = ctx.tag(t).map(|s| s.energy.total_pj()).unwrap_or(0.0);
            (t.to_string(), e / total.total_pj())
        })
        .collect();
    let time_fractions = tags
        .iter()
        .map(|&t| {
            let p = ctx.tag(t).map(|s| s.time_ps).unwrap_or(0);
            (t.to_string(), p as f64 / total_ps as f64)
        })
        .collect();
    SwBreakdown {
        energy_fractions,
        dm_fraction: total.data_movement_fraction(),
        energy: total,
        time_fractions,
    }
}

/// Ops of sub-pixel interpolating a `bs` x `bs` block (two 8-tap passes,
/// NEON-class 8-bit SIMD retiring ~12 MACs per instruction slot).
fn interp_ops(bs: usize) -> OpMix {
    let macs = ((bs + 7) * bs + bs * bs) as u64 * 8;
    OpMix { simd: macs / 12, scalar: bs as u64 * 4, ..OpMix::default() }
}

/// Replay MC for one macro-block: reference fetch + interpolation or copy.
fn replay_mc(ctx: &mut SimContext, reference: &TrackedPlane, pred_out: &TrackedPlane, mx: usize, my: usize, mv: MotionVector) {
    let subpel = mv.is_subpel();
    let x = mx as isize + (mv.x8 / 8) as isize;
    let y = my as isize + (mv.y8 / 8) as isize;
    if subpel {
        // MC operates on sub-blocks (4x4..8x8 in VP9); each one fetches
        // its own tap-padded window, the source of the overfetch.
        ctx.scoped("sub_pixel_interpolation", |ctx| {
            for qy in 0..2isize {
                for qx in 0..2isize {
                    reference.touch_rect(ctx, x + qx * 8 - 3, y + qy * 8 - 3, 15, 15, AccessKind::Read);
                    ctx.ops(interp_ops(8));
                }
            }
            pred_out.touch_rect(ctx, mx as isize, my as isize, MB, MB, AccessKind::Write);
        });
    } else {
        ctx.scoped("other_mc", |ctx| {
            reference.touch_rect(ctx, x, y, MB, MB, AccessKind::Read);
            ctx.ops(OpMix { simd: (MB * MB / 16) as u64, scalar: 8, ..OpMix::default() });
            pred_out.touch_rect(ctx, mx as isize, my as isize, MB, MB, AccessKind::Write);
        });
    }
}

/// Replay the loop filter's traffic/ops over a plane.
///
/// The filter iterates superblocks in raster-scan order (§6.2.2), so its
/// traffic is two full-plane passes (vertical-edge pass, horizontal-edge
/// pass) plus write-back of the filtered share — streaming at line
/// granularity even though each edge only *uses* a few pixels per line,
/// which is exactly why its traffic is large relative to its output.
fn replay_deblock(ctx: &mut SimContext, plane: &TrackedPlane, stats: DeblockStats) {
    ctx.scoped("deblocking_filter", |ctx| {
        let (w, h) = (plane.plane.width(), plane.plane.height());
        plane.touch_all(ctx, AccessKind::Read); // vertical-edge pass
        plane.touch_all(ctx, AccessKind::Read); // horizontal-edge pass
        let frac = if stats.examined > 0 {
            stats.filtered as f64 / stats.examined as f64
        } else {
            0.0
        };
        let write_rows = ((h as f64) * frac) as usize;
        plane.touch_rect(ctx, 0, 0, w, write_rows, AccessKind::Write);
        // Threshold checks + filter arithmetic; libvpx's loop-filter
        // kernels process 8 edge pixels per SIMD op.
        ctx.ops(OpMix {
            simd: stats.examined * 10 / 8 + stats.filtered * 10 / 8,
            scalar: stats.filtered * 2,
            branch: stats.examined / 4,
            ..OpMix::default()
        });
    });
}

/// Run the instrumented software *decoder* over `frames` frames of `video`
/// (Figures 10 and 11).
///
/// # Errors
///
/// Returns [`DmpimError::Corrupt`] if a self-produced stream fails to
/// decode — a codec bug rather than an input problem, but reported
/// instead of panicking so batch sweeps keep running.
pub fn run_sw_decode(
    video: &SyntheticVideo,
    frames: usize,
    cfg: EncoderConfig,
    ctx: &mut SimContext,
) -> Result<SwBreakdown, DmpimError> {
    // Real encode/decode (untracked) to obtain ground-truth streams/stats.
    let mut refs: Vec<Plane> = Vec::new();
    let mut per_frame = Vec::new();
    for i in 0..frames {
        let src = video.frame(i);
        let r: Vec<&Plane> = refs.iter().rev().take(3).collect();
        let (enc, recon, _) = encode_frame(&src, &r, cfg);
        let r2: Vec<&Plane> = refs.iter().rev().take(3).collect();
        let dec = decode_frame(&enc.data, &r2)
            .map_err(|_| DmpimError::corrupt(i, "self-produced stream failed to decode"))?;
        per_frame.push((enc, dec));
        refs.push(recon);
    }

    let (w, h) = (video.width(), video.height());
    let references: Vec<TrackedPlane> =
        (0..3).map(|_| TrackedPlane::new(ctx, Plane::new(w, h))).collect();
    let recon_buf = TrackedPlane::new(ctx, Plane::new(w, h));

    // Replay steady-state (inter) frames only: keyframes are rare in the
    // paper's 100-frame clips and would skew the per-function shares.
    for (frame, (enc, dec)) in per_frame.iter().enumerate().skip(1) {
        if ctx.tracer().enabled() {
            ctx.mark(format!("decode frame {frame}"));
        }
        // Entropy decoding: stream the bitstream; tight serial bit loop.
        ctx.scoped("entropy_decoder", |ctx| {
            let bits: Tracked<u8> = Tracked::from_vec(ctx, enc.data.clone());
            bits.touch_range(ctx, 0, enc.data.len(), AccessKind::Read);
            let symbols = (enc.data.len() as u64) * 8;
            ctx.ops(OpMix { scalar: symbols * 3, branch: symbols / 2, mul: symbols / 4, ..OpMix::default() });
        });
        // Inverse quantization + transform per coded block.
        ctx.scoped("inverse_transform", |ctx| {
            let blocks = (w / 4) * (h / 4);
            let coeffs: Tracked<i16> = Tracked::zeroed(ctx, blocks * 16);
            coeffs.touch_range(ctx, 0, dec.coded_blocks as usize * 16, AccessKind::Read);
            ctx.ops(OpMix {
                simd: dec.coded_blocks * 24,
                mul: dec.coded_blocks * 4,
                ..OpMix::default()
            });
        });
        // Motion compensation against the reference the stream chose.
        let mut i = 0;
        for my in (0..h).step_by(MB) {
            for mx in (0..w).step_by(MB) {
                let (ridx, mv) = if dec.mvs.is_empty() { (0, MotionVector::default()) } else { dec.mvs[i] };
                replay_mc(ctx, &references[ridx.min(2)], &recon_buf, mx, my, mv);
                i += 1;
            }
        }
        // Residual add + frame write.
        ctx.scoped("other_mc", |ctx| {
            recon_buf.touch_all(ctx, AccessKind::Write);
            ctx.ops(OpMix { simd: (w * h / 16) as u64, ..OpMix::default() });
        });
        // Loop filter.
        replay_deblock(ctx, &recon_buf, dec.deblock);
        // Frame-level bookkeeping.
        ctx.scoped("other", |ctx| ctx.ops(OpMix::scalar(50_000)));
    }

    if let Some(e) = ctx.error() {
        return Err(e.clone());
    }
    Ok(collect(
        ctx,
        &[
            "sub_pixel_interpolation",
            "other_mc",
            "deblocking_filter",
            "entropy_decoder",
            "inverse_transform",
            "other",
        ],
    ))
}

/// Run the instrumented software *encoder* (Figure 15).
///
/// # Errors
///
/// Returns [`DmpimError`] if the replay poisons the simulation context
/// (injected faults or watchdog timeout); the encoder itself is
/// infallible on synthetic input.
pub fn run_sw_encode(
    video: &SyntheticVideo,
    frames: usize,
    cfg: EncoderConfig,
    ctx: &mut SimContext,
) -> Result<SwBreakdown, DmpimError> {
    let mut refs: Vec<Plane> = Vec::new();
    let mut per_frame = Vec::new();
    for i in 0..frames {
        let src = video.frame(i);
        let r: Vec<&Plane> = refs.iter().rev().take(3).collect();
        let (enc, recon, stats) = encode_frame(&src, &r, cfg);
        per_frame.push((enc, stats));
        refs.push(recon);
    }

    let (w, h) = (video.width(), video.height());
    let current = TrackedPlane::new(ctx, Plane::new(w, h));
    let references: Vec<TrackedPlane> =
        (0..3).map(|_| TrackedPlane::new(ctx, Plane::new(w, h))).collect();
    let recon_buf = TrackedPlane::new(ctx, Plane::new(w, h));

    for (frame, (enc, stats)) in per_frame.iter().enumerate().skip(1) {
        if ctx.tracer().enabled() {
            ctx.mark(format!("encode frame {frame}"));
        }
        let mbs = stats.macroblocks.max(1);
        let int_cand_per_mb = stats.search.integer_candidates / mbs;
        let sub_cand_per_mb = stats.search.subpel_candidates / mbs;
        let mut i = 0;
        for my in (0..h).step_by(MB) {
            for mx in (0..w).step_by(MB) {
                // Motion estimation: every candidate reads a 16x16 block
                // from a reference and computes a SAD.
                ctx.scoped("motion_estimation", |ctx| {
                    current.touch_rect(ctx, mx as isize, my as isize, MB, MB, AccessKind::Read);
                    for c in 0..int_cand_per_mb {
                        // The diamond walks the search window across all
                        // three references.
                        let reference = &references[(c % 3) as usize];
                        // The diamond + refinement wander across the full
                        // search range.
                        let dx = ((c as isize * 7) % 33) - 16;
                        let dy = ((c as isize * 5) % 25) - 12;
                        reference.touch_rect(ctx, mx as isize + dx, my as isize + dy, MB, MB, AccessKind::Read);
                        ctx.ops(OpMix { simd: (MB * MB / 8) as u64, scalar: 12, ..OpMix::default() });
                    }
                    for c in 0..sub_cand_per_mb {
                        let reference = &references[(c % 3) as usize];
                        reference.touch_rect(ctx, mx as isize - 3, my as isize - 3, MB + 7, MB + 7, AccessKind::Read);
                        // Fused interpolate+SAD (libvpx's sub-pel variance
                        // kernels): ~24 MACs per SIMD slot.
                        let macs = ((MB + 7) * MB + MB * MB) as u64 * 8;
                        ctx.ops(OpMix { simd: macs / 24 + (MB * MB / 8) as u64, scalar: 16, ..OpMix::default() });
                    }
                });
                // Intra prediction candidate (mode decision input).
                ctx.scoped("intra_prediction", |ctx| {
                    // Several candidate modes are built and scored per MB.
                    current.touch_rect(ctx, mx as isize, my as isize - 1, MB, 1, AccessKind::Read);
                    current.touch_rect(ctx, mx as isize - 1, my as isize, 1, MB, AccessKind::Read);
                    ctx.ops(OpMix { simd: (MB * MB / 2) as u64, scalar: 64, ..OpMix::default() });
                });
                // Transform + quantization of the residual.
                ctx.scoped("transform", |ctx| {
                    current.touch_rect(ctx, mx as isize, my as isize, MB, MB, AccessKind::Read);
                    ctx.ops(OpMix { simd: 16 * 24, ..OpMix::default() });
                });
                ctx.scoped("quantization", |ctx| {
                    ctx.ops(OpMix { simd: 16 * 8, mul: 16 * 8, scalar: 16 * 4, ..OpMix::default() });
                });
                // Reconstruction MC for the loop (decode-side of encoder).
                if !stats.mvs.is_empty() {
                    let (ridx, mv) = stats.mvs[i];
                    replay_mc(ctx, &references[ridx.min(2)], &recon_buf, mx, my, mv);
                }
                i += 1;
            }
        }
        replay_deblock(ctx, &recon_buf, stats.deblock);
        // Entropy coding, bitstream write, mode decision, rate control.
        ctx.scoped("other", |ctx| {
            let bits: Tracked<u8> = Tracked::zeroed(ctx, enc.data.len().max(1));
            bits.touch_range(ctx, 0, enc.data.len(), AccessKind::Write);
            let symbols = (enc.data.len() as u64) * 8;
            ctx.ops(OpMix {
                scalar: symbols * 4 + stats.macroblocks * 2_500,
                branch: symbols + stats.macroblocks * 400,
                ..OpMix::default()
            });
        });
    }

    if let Some(e) = ctx.error() {
        return Err(e.clone());
    }
    Ok(collect(
        ctx,
        &[
            "motion_estimation",
            "intra_prediction",
            "transform",
            "quantization",
            "deblocking_filter",
            "sub_pixel_interpolation",
            "other_mc",
            "other",
        ],
    ))
}

/// Fixed number of block-row bands the pure compute of the big kernels
/// is split into. The band count — not the host's core count — defines
/// the split, so the merged result is bit-identical on any machine.
const COMPUTE_BANDS: usize = 8;

/// Per-frame motion-search results, one `Vec<BlockSearch>` per frame in
/// raster block order.
type SearchResults = Vec<Vec<BlockSearch>>;

/// Continue the per-byte checksum fold `a.rotate_left(3) ^ b` across a
/// chunk summarized as `(partial, bytes)`, where `partial` is the fold
/// of the chunk starting from 0.
///
/// Proof sketch (DESIGN.md §4j): with `f(a, b) = a.rotate_left(3) ^ b`,
/// rotation distributes over xor, so by induction over the chunk
/// `fold(s, A) = s.rotate_left(3·|A|) ^ fold(0, A)`. Folding chunks
/// left-to-right with this merge therefore reproduces the sequential
/// fold bit for bit, no matter how the chunks were scheduled.
fn merge_checksum(sum: u64, partial: u64, bytes: u64) -> u64 {
    sum.rotate_left(((3 * bytes) % 64) as u32) ^ partial
}

/// Interpolation checksum of `frames`, computed over [`COMPUTE_BANDS`]
/// fixed block-row bands in parallel and merged in band order — exactly
/// the sequential raster-order fold (see [`merge_checksum`]).
fn interp_checksum(frames: &[Plane], w: usize, h: usize, bs: usize) -> u64 {
    let rows: Vec<usize> = (0..h).step_by(bs).collect();
    let mut sum = 0u64;
    for reference in frames {
        let parts: Vec<(u64, u64)> = thread::scope(|s| {
            let handles: Vec<_> = rows
                .chunks(rows.len().div_ceil(COMPUTE_BANDS))
                .map(|band| {
                    s.spawn(move || {
                        let (mut tmp, mut block) = (Vec::new(), Vec::new());
                        let (mut partial, mut bytes) = (0u64, 0u64);
                        for &by in band {
                            for bx in (0..w).step_by(bs) {
                                // Vary the 1/8-pel phase per block, as real
                                // motion fields do.
                                let mv = MotionVector {
                                    x8: 1 + ((bx / bs + by / bs) % 7) as i32,
                                    y8: 1 + ((bx / bs) % 7) as i32,
                                };
                                interpolate_block_into(
                                    reference,
                                    bx as isize * 8 + mv.x8 as isize,
                                    by as isize * 8 + mv.y8 as isize,
                                    bs,
                                    bs,
                                    &mut tmp,
                                    &mut block,
                                );
                                partial = block
                                    .iter()
                                    .fold(partial, |a, &b| a.rotate_left(3) ^ b as u64);
                                bytes += block.len() as u64;
                            }
                        }
                        (partial, bytes)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("checksum band panicked")).collect()
        });
        for (partial, bytes) in parts {
            sum = merge_checksum(sum, partial, bytes);
        }
    }
    sum
}

/// The §9 sub-pixel-interpolation microbenchmark: interpolate every
/// macro-block of a frame at a fractional offset (Figure 20).
///
/// Cloning shares the compute cache: the synthesized frames and the
/// interpolation checksum are a pure function of the video content, so
/// per-mode shard jobs clone one prototype and whichever shard runs
/// first populates the cache for all of them.
#[derive(Debug, Clone)]
pub struct SubPixelInterpolationKernel {
    video: SyntheticVideo,
    frames: usize,
    /// Checksum of interpolated output (determinism guard).
    pub checksum: u64,
    /// Synthesized frames + checksum, computed once and shared across
    /// clones. The interpolation arithmetic is a pure function of the
    /// video content, so when the harness replays the kernel on each
    /// platform the pixel work is identical; only the simulated traffic
    /// differs per mode.
    cache: Arc<OnceLock<(Vec<Plane>, u64)>>,
}

impl SubPixelInterpolationKernel {
    /// Interpolate `frames` frames of the given source.
    pub fn new(video: SyntheticVideo, frames: usize) -> Self {
        Self { video, frames, checksum: 0, cache: Arc::new(OnceLock::new()) }
    }

    /// A 4K-frame configuration like the paper's (one frame keeps bench
    /// runtime sane; the per-pixel profile is frame-count invariant).
    pub fn paper_input() -> Self {
        Self::new(SyntheticVideo::new(3840, 2160, 2, 0xd0), 1)
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        Self::new(SyntheticVideo::new(1280, 720, 2, 0xd0), 1)
    }
}

impl Kernel for SubPixelInterpolationKernel {
    fn name(&self) -> &'static str {
        "sub_pixel_interpolation"
    }

    fn working_set_bytes(&self) -> u64 {
        (self.video.width() * self.video.height() * 2) as u64
    }

    fn run(&mut self, ctx: &mut SimContext) {
        let (w, h) = (self.video.width(), self.video.height());
        let bs = 8; // VP9 interpolates per sub-block (4x4..8x8)
        let (frames, sum) = self.cache.get_or_init(|| {
            let frames: Vec<Plane> = (0..self.frames).map(|f| self.video.frame(f)).collect();
            let sum = interp_checksum(&frames, w, h, bs);
            (frames, sum)
        });
        for plane in frames {
            let reference = TrackedPlane::new(ctx, plane.clone());
            let out = TrackedPlane::new(ctx, Plane::new(w, h));
            ctx.scoped("sub_pixel_interpolation", |ctx| {
                for by in (0..h).step_by(bs) {
                    for bx in (0..w).step_by(bs) {
                        // The tap-padded reference window does not depend on
                        // the sub-pel phase, so the traffic replay needs no
                        // per-block motion vector.
                        reference.touch_rect(
                            ctx,
                            bx as isize - 3,
                            by as isize - 3,
                            bs + 7,
                            bs + 7,
                            AccessKind::Read,
                        );
                        ctx.ops(interp_ops(bs));
                        out.touch_rect(ctx, bx as isize, by as isize, bs, bs, AccessKind::Write);
                    }
                }
            });
        }
        self.checksum = *sum;
    }
}

/// The §9 deblocking-filter microbenchmark (Figure 20).
#[derive(Debug)]
pub struct DeblockingFilterKernel {
    video: SyntheticVideo,
    frames: usize,
    /// Filtered quads across all frames.
    pub filtered: u64,
    /// Per-frame quantized plane + filter statistics, computed once; the
    /// filter decisions depend only on pixel content, not execution mode.
    cache: Option<Vec<(Plane, DeblockStats)>>,
}

impl DeblockingFilterKernel {
    /// Filter `frames` frames.
    pub fn new(video: SyntheticVideo, frames: usize) -> Self {
        Self { video, frames, filtered: 0, cache: None }
    }

    /// 4K, as in the paper's decoder evaluation.
    pub fn paper_input() -> Self {
        Self::new(SyntheticVideo::new(3840, 2160, 3, 0xde), 1)
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        Self::new(SyntheticVideo::new(128, 96, 3, 0xde), 2)
    }
}

impl Kernel for DeblockingFilterKernel {
    fn name(&self) -> &'static str {
        "deblocking_filter"
    }

    fn working_set_bytes(&self) -> u64 {
        (self.video.width() * self.video.height()) as u64
    }

    fn run(&mut self, ctx: &mut SimContext) {
        if self.cache.is_none() {
            let mut per_frame = Vec::with_capacity(self.frames);
            for f in 0..self.frames {
                // Quantize the frame blockily first so the filter has work.
                let mut plane = self.video.frame(f);
                for v in plane.data_mut().iter_mut() {
                    *v = (*v / 8) * 8;
                }
                let mut work = plane.clone();
                let stats = deblock_plane(&mut work, 8);
                per_frame.push((plane, stats));
            }
            self.cache = Some(per_frame);
        }
        self.filtered = 0;
        for (plane, stats) in self.cache.as_ref().expect("cache populated above") {
            let tracked = TrackedPlane::new(ctx, plane.clone());
            self.filtered += stats.filtered;
            replay_deblock(ctx, &tracked, *stats);
        }
    }
}

/// One memoized per-block search result: block index, best motion
/// vector, its SAD, and the search statistics to replay as traffic.
type BlockSearch = (usize, MotionVector, u64, SearchStats);

/// Per-block search results for one frame, in raster order, computed
/// over [`COMPUTE_BANDS`] fixed macro-block-row bands in parallel. Each
/// block's search is independent, so concatenating the bands in band
/// order is exactly the sequential raster-order result vector.
fn search_frame(cur: &Plane, refs: &[&Plane; 3], w: usize, h: usize, range: i32) -> Vec<BlockSearch> {
    let rows: Vec<usize> = (0..h).step_by(MB).collect();
    let parts: Vec<Vec<BlockSearch>> = thread::scope(|s| {
        let handles: Vec<_> = rows
            .chunks(rows.len().div_ceil(COMPUTE_BANDS))
            .map(|band| {
                s.spawn(move || {
                    let mut blocks = Vec::new();
                    for &my in band {
                        for mx in (0..w).step_by(MB) {
                            blocks.push(motion_search(cur, refs, mx, my, MB, range));
                        }
                    }
                    blocks
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("search band panicked")).collect()
    });
    parts.into_iter().flatten().collect()
}

/// The §9 motion-estimation microbenchmark: diamond search over three
/// reference frames (Figure 20).
///
/// Cloning shares the compute cache (see
/// [`SubPixelInterpolationKernel`]): per-mode shard jobs clone one
/// prototype, and the first to run performs the search for all of them.
#[derive(Debug, Clone)]
pub struct MotionEstimationKernel {
    video: SyntheticVideo,
    frames: usize,
    range: i32,
    /// Total SAD of the best matches (determinism guard).
    pub total_sad: u64,
    /// Synthesized planes (frame 0..frames+3) and per-block search results
    /// in raster order, computed once and shared across clones; the search
    /// is a pure function of the pixel content and identical on every
    /// platform.
    cache: Arc<OnceLock<(Vec<Plane>, SearchResults)>>,
}

impl MotionEstimationKernel {
    /// Search `frames` frames against their three predecessors.
    pub fn new(video: SyntheticVideo, frames: usize, range: i32) -> Self {
        Self { video, frames, range, total_sad: 0, cache: Arc::new(OnceLock::new()) }
    }

    /// HD frames, as in §9 ("10 frames from an HD video"); one frame keeps
    /// test runtime sane while preserving the per-MB profile.
    pub fn paper_input() -> Self {
        Self::new(SyntheticVideo::new(1280, 720, 2, 0x3e), 1, 16)
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        Self::new(SyntheticVideo::new(128, 96, 2, 0x3e), 1, 12)
    }
}

impl Kernel for MotionEstimationKernel {
    fn name(&self) -> &'static str {
        "motion_estimation"
    }

    fn working_set_bytes(&self) -> u64 {
        (self.video.width() * self.video.height() * 4) as u64
    }

    fn run(&mut self, ctx: &mut SimContext) {
        let (w, h) = (self.video.width(), self.video.height());
        let (planes, results) = self.cache.get_or_init(|| {
            let planes: Vec<Plane> =
                (0..self.frames + 3).map(|i| self.video.frame(i)).collect();
            let results = (0..self.frames)
                .map(|f| {
                    let refs = [&planes[f + 2], &planes[f + 1], &planes[f]];
                    search_frame(&planes[f + 3], &refs, w, h, self.range)
                })
                .collect();
            (planes, results)
        });
        let mut total_sad = 0u64;
        for f in 0..self.frames {
            let tcur = TrackedPlane::new(ctx, planes[f + 3].clone());
            let trefs = [
                TrackedPlane::new(ctx, planes[f + 2].clone()),
                TrackedPlane::new(ctx, planes[f + 1].clone()),
                TrackedPlane::new(ctx, planes[f].clone()),
            ];
            ctx.scoped("motion_estimation", |ctx| {
                let mut block = results[f].iter();
                for my in (0..h).step_by(MB) {
                    for mx in (0..w).step_by(MB) {
                        let &(idx, mv, sad, stats) =
                            block.next().expect("one cached result per block");
                        total_sad += sad;
                        tcur.touch_rect(ctx, mx as isize, my as isize, MB, MB, AccessKind::Read);
                        // Integer candidates read 16x16; sub-pel candidates
                        // read the padded window from the chosen reference.
                        let per_ref = stats.integer_candidates / 3;
                        for t in &trefs {
                            for c in 0..per_ref {
                                let j = (c as isize % 5) - 2;
                                t.touch_rect(ctx, mx as isize + 2 * j, my as isize + j, MB, MB, AccessKind::Read);
                            }
                        }
                        for _ in 0..stats.subpel_candidates {
                            trefs[idx].touch_rect(ctx, mx as isize + (mv.x8 / 8) as isize - 1, my as isize + (mv.y8 / 8) as isize - 1, MB + 1, MB + 1, AccessKind::Read);
                        }
                        // NEON SAD16x16 is ~16 wide ops; the sub-pel search
                        // scores candidates with bilinear-filtered variance
                        // (2 taps), not the full 8-tap interpolation.
                        ctx.ops(OpMix {
                            simd: stats.integer_candidates * (MB * MB / 16) as u64
                                + stats.subpel_candidates * (MB * MB * 2 * 2 / 16 + MB * MB / 16) as u64,
                            scalar: (stats.integer_candidates + stats.subpel_candidates) * 6,
                            branch: stats.integer_candidates * 2,
                            ..OpMix::default()
                        });
                    }
                }
            });
        }
        self.total_sad = total_sad;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::{ExecutionMode, OffloadEngine, Platform};

    fn small_cfg() -> EncoderConfig {
        EncoderConfig { q: 20, range: 8 }
    }

    /// Cache-scaled platform so test-sized frames stress the hierarchy
    /// the way 4K frames stress Table 1's.
    fn test_platform() -> Platform {
        Platform::reduced(32)
    }

    #[test]
    fn decode_breakdown_matches_fig10_shape() {
        let v = SyntheticVideo::new(320, 240, 1, 0x10);
        let mut ctx = SimContext::cpu_only(test_platform());
        let b = run_sw_decode(&v, 3, small_cfg(), &mut ctx).unwrap();
        let get = |t: &str| b.energy_fractions.iter().find(|(n, _)| n == t).unwrap().1;
        // §6.2.1: sub-pel interpolation dominates (37.5%), deblocking is
        // second (29.7%), entropy/inverse-transform are small.
        assert!(get("sub_pixel_interpolation") > get("deblocking_filter"));
        assert!(get("deblocking_filter") > get("entropy_decoder"));
        assert!(get("sub_pixel_interpolation") > 0.2, "{b:?}");
        assert!((0.45..0.85).contains(&b.dm_fraction), "DM {}", b.dm_fraction);
    }

    #[test]
    fn encode_breakdown_matches_fig15_shape() {
        let v = SyntheticVideo::new(320, 240, 1, 0x15);
        let mut ctx = SimContext::cpu_only(test_platform());
        let b = run_sw_encode(&v, 3, small_cfg(), &mut ctx).unwrap();
        let get = |t: &str| b.energy_fractions.iter().find(|(n, _)| n == t).unwrap().1;
        // §7.2.1: ME is the top consumer (39.6%); intra/transform/quant
        // each under ~9%.
        for t in ["intra_prediction", "transform", "quantization"] {
            assert!(get("motion_estimation") > get(t), "{t}");
            assert!(get(t) < 0.15, "{t} = {}", get(t));
        }
        assert!(
            (0.30..0.75).contains(&get("motion_estimation")),
            "ME {}",
            get("motion_estimation")
        );
        // Test-scale DM sits below the paper's 59.1% (frames small enough
        // that search windows cache); the HD repro harness lands higher.
        assert!((0.12..0.90).contains(&b.dm_fraction), "DM {}", b.dm_fraction);
    }

    #[test]
    fn subpel_kernel_fig20_shape() {
        let eng = OffloadEngine::new();
        let mut k = SubPixelInterpolationKernel::small();
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        let c1 = k.checksum;
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        assert_eq!(k.checksum, c1, "kernel must be deterministic");
        let acc = eng.run(&mut k, ExecutionMode::PimAcc);
        assert!(cpu.mpki > 10.0, "mpki {}", cpu.mpki);
        assert!(pim.energy_vs(&cpu) < 0.75, "pim {}", pim.energy_vs(&cpu));
        assert!(acc.energy_vs(&cpu) < pim.energy_vs(&cpu) + 0.02);
    }

    #[test]
    fn deblock_kernel_fig20_shape() {
        let eng = OffloadEngine::new();
        let mut k = DeblockingFilterKernel::small();
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        assert!(k.filtered > 0, "filter must do real work");
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        assert!(pim.energy_vs(&cpu) < 0.8, "pim {}", pim.energy_vs(&cpu));
    }

    #[test]
    fn banded_interp_checksum_matches_sequential_fold() {
        let v = SyntheticVideo::new(96, 80, 2, 0xd0);
        let frames: Vec<Plane> = (0..2).map(|f| v.frame(f)).collect();
        let bs = 8;
        let (mut tmp, mut block) = (Vec::new(), Vec::new());
        let mut want = 0u64;
        for reference in &frames {
            for by in (0..80).step_by(bs) {
                for bx in (0..96).step_by(bs) {
                    let mv = MotionVector {
                        x8: 1 + ((bx / bs + by / bs) % 7) as i32,
                        y8: 1 + ((bx / bs) % 7) as i32,
                    };
                    interpolate_block_into(
                        reference,
                        bx as isize * 8 + mv.x8 as isize,
                        by as isize * 8 + mv.y8 as isize,
                        bs,
                        bs,
                        &mut tmp,
                        &mut block,
                    );
                    want = block.iter().fold(want, |a, &b| a.rotate_left(3) ^ b as u64);
                }
            }
        }
        assert_eq!(interp_checksum(&frames, 96, 80, bs), want);
    }

    #[test]
    fn banded_search_matches_sequential_raster_order() {
        let v = SyntheticVideo::new(96, 96, 2, 0x3e);
        let planes: Vec<Plane> = (0..4).map(|i| v.frame(i)).collect();
        let refs = [&planes[2], &planes[1], &planes[0]];
        let got = search_frame(&planes[3], &refs, 96, 96, 12);
        let mut want = Vec::new();
        for my in (0..96).step_by(MB) {
            for mx in (0..96).step_by(MB) {
                want.push(motion_search(&planes[3], &refs, mx, my, MB, 12));
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn kernel_clones_share_the_compute_cache() {
        let eng = OffloadEngine::new();
        let mut a = MotionEstimationKernel::small();
        let mut b = a.clone();
        eng.run(&mut a, ExecutionMode::CpuOnly);
        assert!(b.cache.get().is_some(), "clone sees the prototype's computed cache");
        eng.run(&mut b, ExecutionMode::PimCore);
        assert_eq!(a.total_sad, b.total_sad);

        let mut i = SubPixelInterpolationKernel::small();
        let mut j = i.clone();
        eng.run(&mut i, ExecutionMode::CpuOnly);
        assert!(j.cache.get().is_some());
        eng.run(&mut j, ExecutionMode::PimAcc);
        assert_eq!(i.checksum, j.checksum);
    }

    #[test]
    fn me_kernel_fig20_shape() {
        let eng = OffloadEngine::new();
        let mut k = MotionEstimationKernel::small();
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        let acc = eng.run(&mut k, ExecutionMode::PimAcc);
        // §10.3.1: PIM-Core gives a modest speedup on ME (12.6%); PIM-Acc
        // a large one (2.1x), because ME is the most compute-heavy target.
        assert!(acc.speedup_vs(&cpu) > pim.speedup_vs(&cpu));
        assert!(acc.speedup_vs(&cpu) > 1.3, "acc {}", acc.speedup_vs(&cpu));
        assert!(pim.energy_vs(&cpu) < 0.8);
        assert!(acc.energy_vs(&cpu) < pim.energy_vs(&cpu));
    }
}
