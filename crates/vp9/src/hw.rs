//! Analytic traffic/energy model of the hardware VP9 codec
//! (paper §6.3, §7.3; Figures 12, 16 and 21).
//!
//! The hardware decoder/encoder stream whole-frame traffic patterns that
//! the paper measures from RTL, not from a cache simulator: reference-
//! frame fetches (batched MC with large SRAM line buffers), current/
//! reconstructed frame I/O, the bitstream, and optional lossless frame
//! compression. This module reproduces those per-frame byte budgets and
//! prices the three §6.3.2/§7.3.2 configurations: the baseline on-SoC
//! codec, the codec with MC(+ME)+deblocking moved onto a PIM core, and
//! onto a PIM accelerator embedding the codec's own datapaths in memory.
//!
//! Per-pixel coefficients are set so the CPU-side shares match Figure 12
//! and Figure 16 (reference ~60–75% of traffic, reconstructed frame
//! ~12–25%, lossless compression removing ~55–60% of reference bytes).

use pim_energy::{Component, EnergyBreakdown, EnergyParams, Engine, OpClass};

/// Video resolution of the hardware study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// 1280x720 ("HD" in Figures 12/16).
    Hd,
    /// 3840x2160 ("4K").
    Uhd4k,
}

impl Resolution {
    /// Pixels per frame.
    pub fn pixels(self) -> u64 {
        match self {
            Resolution::Hd => 1280 * 720,
            Resolution::Uhd4k => 3840 * 2160,
        }
    }

    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Hd => "HD",
            Resolution::Uhd4k => "4K",
        }
    }

    /// Reference pixels fetched per current pixel by the hardware
    /// *decoder*'s MC. The paper reports 2.9 for 4K (§6.3.1) and a larger
    /// per-pixel overfetch at HD (its Figure 12 shares and the 4.6x
    /// 4K-vs-HD total imply ~6.9): the measured clips' motion makes the
    /// SRAM window less effective at the smaller frame.
    fn decode_overfetch(self) -> f64 {
        match self {
            Resolution::Hd => 6.0,
            Resolution::Uhd4k => 2.9,
        }
    }

    /// Reference pixels fetched per current pixel per reference frame by
    /// the *encoder*'s ME (predictable sliding search window, §7.3).
    fn encode_overfetch(self) -> f64 {
        match self {
            Resolution::Hd => 2.2,
            Resolution::Uhd4k => 2.1,
        }
    }
}

/// Bytes per pixel of a YUV 4:2:0 frame.
const BYTES_PER_PX: f64 = 1.5;
/// Fraction of reference/reconstructed traffic left by lossless frame
/// compression (paper §7.3.1: ~59.7% reduction).
const COMPRESS_KEEP: f64 = 0.42;
/// Compression metadata traffic, bytes per pixel.
const COMPRESS_INFO: f64 = 0.12;

/// One labeled traffic component, in bytes per frame.
pub type TrafficPart = (&'static str, f64);

/// Off-chip traffic of the hardware decoder for one frame (Figure 12).
pub fn decoder_traffic(res: Resolution, compression: bool) -> Vec<TrafficPart> {
    let px = res.pixels() as f64;
    let keep = if compression { COMPRESS_KEEP } else { 1.0 };
    let mut parts = vec![
        ("Reference Frame", px * BYTES_PER_PX * res.decode_overfetch() * keep),
        ("Decoder Data", px * 0.35),
        ("Reconst. Frame Metadata", px * 0.20),
        ("Deblocking Filter", px * 0.50),
        ("Reconstructed Frame", px * BYTES_PER_PX * keep),
    ];
    if compression {
        parts.insert(1, ("Compression Info", px * COMPRESS_INFO));
    }
    parts
}

/// Off-chip traffic of the hardware encoder for one frame (Figure 16).
pub fn encoder_traffic(res: Resolution, compression: bool) -> Vec<TrafficPart> {
    let px = res.pixels() as f64;
    let keep = if compression { COMPRESS_KEEP } else { 1.0 };
    let mut parts = vec![
        // The source frame cannot be compressed (it arrives raw, §7.3.1).
        ("Current Frame", px * (BYTES_PER_PX + 0.66)),
        ("Reference Frame", px * BYTES_PER_PX * 3.0 * res.encode_overfetch() * keep),
        ("Deblocking Filter", px * 0.40),
        ("Reconstructed Frame", px * BYTES_PER_PX * keep),
        ("Encoded Bitstream", px * 0.10),
        ("Other", px * 0.25),
    ];
    if compression {
        parts.insert(2, ("Compression Info", px * COMPRESS_INFO));
    }
    parts
}

/// Total bytes of a traffic breakdown.
pub fn total_bytes(parts: &[TrafficPart]) -> f64 {
    parts.iter().map(|(_, b)| b).sum()
}

/// Which logic runs the MC/ME + deblocking stages (Figure 21's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwPimMode {
    /// Everything on the on-SoC VP9 hardware (the baseline).
    Baseline,
    /// MC/ME + deblocking on the in-memory general-purpose core.
    PimCore,
    /// MC/ME + deblocking on in-memory fixed-function units (§6.3.2).
    PimAcc,
}

impl HwPimMode {
    /// All modes in presentation order.
    pub const ALL: [HwPimMode; 3] = [HwPimMode::Baseline, HwPimMode::PimCore, HwPimMode::PimAcc];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            HwPimMode::Baseline => "VP9",
            HwPimMode::PimCore => "PIM-Core",
            HwPimMode::PimAcc => "PIM-Acc",
        }
    }
}

/// Datapath operations per pixel of the offloadable stages (MC + deblock
/// for the decoder; ME + MC + deblock for the encoder).
fn offload_ops_per_px(encode: bool) -> f64 {
    if encode {
        80.0
    } else {
        30.0
    }
}

/// Remaining (non-offloadable) datapath ops per pixel (entropy, transform,
/// control).
fn residual_ops_per_px(encode: bool) -> f64 {
    if encode {
        25.0
    } else {
        12.0
    }
}

/// Energy of decoding or encoding one frame under a PIM mode.
///
/// Traffic that stays with the on-SoC codec crosses the off-chip channel;
/// traffic belonging to the offloaded stages (reference + reconstructed +
/// deblock bytes) moves at in-stack rates when MC/deblock live in memory.
pub fn hw_energy(res: Resolution, compression: bool, mode: HwPimMode, encode: bool, params: &EnergyParams) -> EnergyBreakdown {
    let parts = if encode {
        encoder_traffic(res, compression)
    } else {
        decoder_traffic(res, compression)
    };
    let px = res.pixels() as f64;
    let mut e = EnergyBreakdown::new();

    // With ME in memory, the encoder's current-frame reads also stay
    // in-stack (§7.3.2); lossless frame compression composes with PIM
    // (§10.3.2's best configuration), so compressed byte counts apply on
    // both paths.
    let offloaded_part = |name: &str| {
        matches!(name, "Reference Frame" | "Reconstructed Frame" | "Deblocking Filter")
            || (encode && name == "Current Frame")
    };

    for (name, bytes) in &parts {
        let stays_offchip = mode == HwPimMode::Baseline || !offloaded_part(name);
        e += params.price_bulk_transfer(*bytes as u64, stays_offchip);
    }

    // Compute energy. A general-purpose core needs ~2 instructions per
    // fused datapath operation of the fixed-function pipelines, which is
    // why PIM-Core loses to the baseline codec on compute (§10.3.2).
    let (off_engine, off_ops) = match mode {
        HwPimMode::Baseline => (Engine::CodecHw, offload_ops_per_px(encode)),
        HwPimMode::PimCore => (Engine::PimCore, 2.0 * offload_ops_per_px(encode)),
        HwPimMode::PimAcc => (Engine::PimAccel, offload_ops_per_px(encode)),
    };
    e.add_pj(
        Component::Cpu,
        px * off_ops * params.op_energy_pj(off_engine, OpClass::Scalar),
    );
    e.add_pj(
        Component::Cpu,
        px * residual_ops_per_px(encode) * params.op_energy_pj(Engine::CodecHw, OpClass::Scalar),
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share(parts: &[TrafficPart], name: &str) -> f64 {
        let total = total_bytes(parts);
        parts.iter().find(|(n, _)| *n == name).map(|(_, b)| b / total).unwrap_or(0.0)
    }

    #[test]
    fn decoder_reference_share_matches_fig12() {
        // §6.3.1: up to 75.5% (HD) and 59.6% (4K) without compression;
        // 62.2% / 48.8% with.
        let hd = decoder_traffic(Resolution::Hd, false);
        assert!((0.70..0.80).contains(&share(&hd, "Reference Frame")), "{}", share(&hd, "Reference Frame"));
        let k4 = decoder_traffic(Resolution::Uhd4k, false);
        assert!((0.55..0.66).contains(&share(&k4, "Reference Frame")), "{}", share(&k4, "Reference Frame"));
        let k4c = decoder_traffic(Resolution::Uhd4k, true);
        assert!((0.42..0.55).contains(&share(&k4c, "Reference Frame")), "{}", share(&k4c, "Reference Frame"));
        // Reconstructed frame is the second contributor (~22.2%).
        assert!((0.15..0.30).contains(&share(&k4, "Reconstructed Frame")));
    }

    #[test]
    fn fourk_decode_costs_about_4_6x_hd() {
        // §6.3.1: "decoding one 4K frame requires 4.6x the data movement
        // of a single HD frame".
        let ratio = total_bytes(&decoder_traffic(Resolution::Uhd4k, false))
            / total_bytes(&decoder_traffic(Resolution::Hd, false));
        assert!((3.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn compression_reduces_but_does_not_eliminate_reference_traffic() {
        for res in [Resolution::Hd, Resolution::Uhd4k] {
            let no = total_bytes(&decoder_traffic(res, false));
            let yes = total_bytes(&decoder_traffic(res, true));
            assert!(yes < no);
            assert!(yes > 0.35 * no);
        }
    }

    #[test]
    fn encoder_reference_share_matches_fig16() {
        // §7.3.1: reference = 65.1% of HD encoder traffic (no comp);
        // current frame rises to ~31.9% with compression.
        let hd = encoder_traffic(Resolution::Hd, false);
        assert!((0.58..0.72).contains(&share(&hd, "Reference Frame")), "{}", share(&hd, "Reference Frame"));
        assert!((0.10..0.20).contains(&share(&hd, "Current Frame")));
        let hdc = encoder_traffic(Resolution::Hd, true);
        assert!((0.22..0.40).contains(&share(&hdc, "Current Frame")), "{}", share(&hdc, "Current Frame"));
    }

    #[test]
    fn fig21_shape_holds() {
        let p = EnergyParams::default();
        for encode in [false, true] {
            for compression in [false, true] {
                let base = hw_energy(Resolution::Uhd4k, compression, HwPimMode::Baseline, encode, &p).total_pj();
                let acc = hw_energy(Resolution::Uhd4k, compression, HwPimMode::PimAcc, encode, &p).total_pj();
                // §10.3.2: PIM-Acc cuts 69.8–75.1% of codec energy
                // (uncompressed); the margin narrows once the baseline
                // also compresses.
                let cut = 1.0 - acc / base;
                let band = if compression { 0.25..0.85 } else { 0.45..0.85 };
                assert!(band.contains(&cut), "encode={encode} comp={compression}: cut {cut}");
            }
            // PIM-Core pays codec-hw-grade compute on a general core and
            // loses to the compressed baseline (§10.3.2: +63.4%).
            let base_comp = hw_energy(Resolution::Uhd4k, true, HwPimMode::Baseline, encode, &p).total_pj();
            let core_comp = hw_energy(Resolution::Uhd4k, true, HwPimMode::PimCore, encode, &p).total_pj();
            assert!(core_comp > base_comp, "encode={encode}: core {core_comp} vs base {base_comp}");
            // PIM-Acc without compression still beats the baseline *with*
            // compression (§10.3.2, fourth observation).
            let acc_nocomp = hw_energy(Resolution::Uhd4k, false, HwPimMode::PimAcc, encode, &p).total_pj();
            assert!(acc_nocomp < base_comp, "encode={encode}");
        }
    }

    #[test]
    fn labels_cover_all_modes() {
        let labels: Vec<_> = HwPimMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["VP9", "PIM-Core", "PIM-Acc"]);
    }
}
