//! Motion compensation: build the predictor and apply residuals
//! (paper §6.1, block 3 of Figure 9).

use crate::frame::Plane;
use crate::interp::interpolate_block;
use crate::me::MotionVector;

/// Predict a `bs` x `bs` block of the current frame at `(cx, cy)` from
/// `reference` displaced by `mv` (1/8-pel), using sub-pixel interpolation
/// when the vector is fractional.
pub fn predict_block(reference: &Plane, cx: usize, cy: usize, bs: usize, mv: MotionVector) -> Vec<u8> {
    interpolate_block(
        reference,
        cx as isize * 8 + mv.x8 as isize,
        cy as isize * 8 + mv.y8 as isize,
        bs,
        bs,
    )
}

/// Reconstruct pixels: predictor plus residual, clamped to 0..255.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn reconstruct(pred: &[u8], residual: &[i32]) -> Vec<u8> {
    assert_eq!(pred.len(), residual.len(), "length mismatch");
    pred.iter()
        .zip(residual)
        .map(|(&p, &r)| (p as i32 + r).clamp(0, 255) as u8)
        .collect()
}

/// Residual between source pixels and a predictor.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn residual(src: &[u8], pred: &[u8]) -> Vec<i32> {
    assert_eq!(src.len(), pred.len(), "length mismatch");
    src.iter().zip(pred).map(|(&s, &p)| s as i32 - p as i32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SyntheticVideo;

    #[test]
    fn zero_mv_prediction_is_a_copy() {
        let p = SyntheticVideo::new(64, 64, 0, 2).frame(0);
        let pred = predict_block(&p, 16, 16, 8, MotionVector::default());
        for dy in 0..8 {
            for dx in 0..8 {
                assert_eq!(pred[dy * 8 + dx], p.pixel(16 + dx, 16 + dy));
            }
        }
    }

    #[test]
    fn residual_reconstruct_roundtrip() {
        let p = SyntheticVideo::new(64, 64, 3, 2).frame(1);
        let src: Vec<u8> = (0..64).map(|i| p.data()[i]).collect();
        let pred = vec![100u8; 64];
        let r = residual(&src, &pred);
        assert_eq!(reconstruct(&pred, &r), src);
    }

    #[test]
    fn reconstruct_clamps() {
        assert_eq!(reconstruct(&[250], &[100]), vec![255]);
        assert_eq!(reconstruct(&[5], &[-100]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        reconstruct(&[0, 1], &[0]);
    }
}
