//! VP9-style video codec workload (paper §6 and §7).
//!
//! A functional, from-scratch implementation of the codec structure the
//! paper profiles — Figure 9 (decoder) and Figure 14 (encoder):
//!
//! * [`frame`] — planar frames, tracked planes, a deterministic synthetic
//!   video generator (stand-in for the Netflix/Derf clips, §9),
//! * [`interp`] — 1/8-pel sub-pixel interpolation with VP9-class 8-tap
//!   filters (the dominant PIM target of §6.2.2),
//! * [`transform`] — the 4x4 Walsh–Hadamard transform (VP9's lossless-mode
//!   transform) plus uniform quantization,
//! * [`entropy`] — the VP8/VP9 boolean arithmetic coder and the symbol
//!   layer for motion vectors and coefficients,
//! * [`deblock`] — the in-loop deblocking filter (§6.2.2's second target),
//! * [`me`] — diamond-search motion estimation over three reference
//!   frames with sub-pixel refinement (§7.2.2),
//! * [`mc`] — motion compensation,
//! * [`encoder`] / [`decoder`] — the full pipelines; decoding an encoded
//!   stream reproduces the encoder's reconstruction bit-exactly,
//! * [`driver`] — instrumented software-codec runs for Figures 10/11/15
//!   and the Figure 20 PIM-target kernels,
//! * [`hw`] — the analytic hardware-codec traffic/energy model for
//!   Figures 12, 16 and 21.

pub mod deblock;
pub mod decoder;
pub mod driver;
pub mod encoder;
pub mod entropy;
pub mod frame;
pub mod hw;
pub mod interp;
pub mod mc;
pub mod me;
pub mod transform;

pub use decoder::{decode_frame, DecodedFrame};
pub use encoder::{encode_frame, EncodedFrame, EncoderConfig};
pub use frame::{Plane, SyntheticVideo, TrackedPlane};
pub use interp::{interpolate_block, SUBPEL_FILTERS, SUBPEL_SHIFTS};
pub use me::{diamond_search, MotionVector};
