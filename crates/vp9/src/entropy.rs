//! The VP8/VP9 boolean arithmetic coder and the symbol layer.
//!
//! VP9's entire bitstream is driven by a binary arithmetic coder with
//! 8-bit probabilities ("bool coder"). This module implements it —
//! carry propagation and all — plus the small symbol layer the
//! reproduction codec needs: literals, signed values, motion vectors and
//! 4x4 coefficient blocks with static probabilities.
//!
//! The paper observes (§6.2.1) that entropy decoding generates little
//! data movement because its working set (the bitstream window and
//! probability state) fits in cache; the instrumented driver reproduces
//! that by charging only streaming reads of the bitstream itself.

use crate::transform::Block4;

/// Probability that a coefficient is zero (8-bit, out of 256).
const P_ZERO: u8 = 160;
/// Probability used for raw literal bits (uniform).
const P_HALF: u8 = 128;
/// Probability that a motion-vector component is zero.
const P_MV_ZERO: u8 = 96;

/// The boolean arithmetic encoder.
#[derive(Debug, Default)]
pub struct BoolWriter {
    low: u32,
    range: u32,
    count: i32,
    out: Vec<u8>,
}

impl BoolWriter {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self { low: 0, range: 255, count: -24, out: Vec::new() }
    }

    /// Encode one bool with probability `prob`/256 of being false.
    ///
    /// Follows the libvpx VP8 encoder: `low` is a 24-bit sliding window of
    /// the arithmetic interval's lower bound; when 8 fresh bits
    /// accumulate, the top byte is emitted, propagating any carry into
    /// already-emitted bytes.
    pub fn put(&mut self, prob: u8, bit: bool) {
        let split = 1 + (((self.range - 1) * prob as u32) >> 8);
        if bit {
            self.low += split;
            self.range -= split;
        } else {
            self.range = split;
        }
        let mut shift = (self.range as u8).leading_zeros() as i32; // to reach >= 128
        self.range <<= shift;
        self.count += shift;
        if self.count >= 0 {
            let offset = shift - self.count;
            if (self.low << (offset - 1)) & 0x8000_0000 != 0 {
                // Carry into already-emitted bytes.
                let mut i = self.out.len();
                loop {
                    assert!(i > 0, "carry out of an empty stream");
                    i -= 1;
                    if self.out[i] == 0xFF {
                        self.out[i] = 0;
                    } else {
                        self.out[i] += 1;
                        break;
                    }
                }
            }
            self.out.push((self.low >> (24 - offset)) as u8);
            self.low <<= offset;
            shift = self.count;
            self.low &= 0x00FF_FFFF;
            self.count -= 8;
        }
        self.low <<= shift;
    }

    /// Encode `n` raw bits of `value`, MSB first.
    pub fn put_literal(&mut self, value: u32, n: u32) {
        for i in (0..n).rev() {
            self.put(P_HALF, (value >> i) & 1 == 1);
        }
    }

    /// Finish the stream and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..32 {
            self.put(P_HALF, false);
        }
        self.out
    }
}

/// The boolean arithmetic decoder.
#[derive(Debug)]
pub struct BoolReader<'a> {
    data: &'a [u8],
    pos: usize,
    value: u64,
    range: u32,
    bits: i32,
    /// Bytes consumed from the stream (for traffic accounting).
    pub consumed: usize,
}

impl<'a> BoolReader<'a> {
    /// Start decoding `data`.
    pub fn new(data: &'a [u8]) -> Self {
        let mut r = Self { data, pos: 0, value: 0, range: 255, bits: -8, consumed: 0 };
        r.fill();
        r
    }

    fn fill(&mut self) {
        while self.bits < 0 {
            let byte = if self.pos < self.data.len() {
                let b = self.data[self.pos];
                self.pos += 1;
                self.consumed += 1;
                b
            } else {
                0
            };
            self.value = (self.value << 8) | byte as u64;
            self.bits += 8;
        }
    }

    /// Decode one bool with probability `prob`/256 of being false.
    pub fn get(&mut self, prob: u8) -> bool {
        let split = 1 + (((self.range - 1) * prob as u32) >> 8);
        let big = (split as u64) << self.bits;
        let bit = self.value >= big;
        if bit {
            self.range -= split;
            self.value -= big;
        } else {
            self.range = split;
        }
        while self.range < 128 {
            self.range <<= 1;
            self.bits -= 1;
            if self.bits < 0 {
                self.fill();
            }
        }
        bit
    }

    /// Decode `n` raw bits, MSB first.
    pub fn get_literal(&mut self, n: u32) -> u32 {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.get(P_HALF) as u32;
        }
        v
    }
}

/// Encode one 4x4 coefficient block.
pub fn write_coeffs(w: &mut BoolWriter, coeffs: &Block4) {
    for &c in coeffs {
        if c == 0 {
            w.put(P_ZERO, false);
            continue;
        }
        w.put(P_ZERO, true);
        w.put(P_HALF, c < 0);
        let mag = c.unsigned_abs();
        // Unary prefix for 1..=3, escape to a 14-bit literal.
        if mag <= 3 {
            for _ in 1..mag {
                w.put(P_HALF, true);
            }
            w.put(P_HALF, false);
        } else {
            w.put(P_HALF, true);
            w.put(P_HALF, true);
            w.put(P_HALF, true);
            w.put_literal(mag.min((1 << 14) - 1), 14);
        }
    }
}

/// Decode one 4x4 coefficient block.
pub fn read_coeffs(r: &mut BoolReader<'_>) -> Block4 {
    let mut out = [0i32; 16];
    for c in out.iter_mut() {
        if !r.get(P_ZERO) {
            continue;
        }
        let neg = r.get(P_HALF);
        let mut mag = 1u32;
        while mag <= 3 && r.get(P_HALF) {
            mag += 1;
        }
        if mag == 4 {
            mag = r.get_literal(14);
        }
        *c = if neg { -(mag as i32) } else { mag as i32 };
    }
    out
}

/// Encode a motion-vector component in 1/8-pel units (|v| < 1024).
pub fn write_mv_component(w: &mut BoolWriter, v: i32) {
    if v == 0 {
        w.put(P_MV_ZERO, false);
        return;
    }
    w.put(P_MV_ZERO, true);
    w.put(P_HALF, v < 0);
    w.put_literal(v.unsigned_abs().min(1023), 10);
}

/// Decode a motion-vector component.
pub fn read_mv_component(r: &mut BoolReader<'_>) -> i32 {
    if !r.get(P_MV_ZERO) {
        return 0;
    }
    let neg = r.get(P_HALF);
    let mag = r.get_literal(10) as i32;
    if neg {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::rng::SplitMix64;

    #[test]
    fn bool_roundtrip_uniform() {
        let mut w = BoolWriter::new();
        let bits: Vec<bool> = (0..1000).map(|i| (i * 7) % 3 == 0).collect();
        for &b in &bits {
            w.put(P_HALF, b);
        }
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(r.get(P_HALF), b, "bit {i}");
        }
    }

    #[test]
    fn bool_roundtrip_random_probs() {
        let mut rng = SplitMix64::new(17);
        let seq: Vec<(u8, bool)> = (0..5000)
            .map(|_| (rng.next_range(1, 255) as u8, rng.chance(0.3)))
            .collect();
        let mut w = BoolWriter::new();
        for &(p, b) in &seq {
            w.put(p, b);
        }
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        for (i, &(p, b)) in seq.iter().enumerate() {
            assert_eq!(r.get(p), b, "symbol {i}");
        }
    }

    #[test]
    fn skewed_bits_compress_well() {
        // 4096 mostly-false bits at a matching probability: far under
        // 512 bytes of output.
        let mut rng = SplitMix64::new(5);
        let bits: Vec<bool> = (0..4096).map(|_| rng.chance(0.03)).collect();
        let mut w = BoolWriter::new();
        for &b in &bits {
            w.put(235, b);
        }
        let data = w.finish();
        assert!(data.len() < 200, "{} bytes", data.len());
        let mut r = BoolReader::new(&data);
        for &b in &bits {
            assert_eq!(r.get(235), b);
        }
    }

    #[test]
    fn literal_roundtrip() {
        let mut w = BoolWriter::new();
        for v in [0u32, 1, 127, 255, 1023, 0x3FFF] {
            w.put_literal(v, 14);
        }
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        for v in [0u32, 1, 127, 255, 1023, 0x3FFF] {
            assert_eq!(r.get_literal(14), v);
        }
    }

    #[test]
    fn coeff_block_roundtrip() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let mut block = [0i32; 16];
            for c in &mut block {
                if rng.chance(0.4) {
                    *c = rng.next_below(9000) as i32 - 4500;
                }
            }
            let mut w = BoolWriter::new();
            write_coeffs(&mut w, &block);
            let data = w.finish();
            let mut r = BoolReader::new(&data);
            assert_eq!(read_coeffs(&mut r), block);
        }
    }

    #[test]
    fn mv_component_roundtrip() {
        let values = [-1023, -100, -8, -1, 0, 1, 7, 64, 1023];
        let mut w = BoolWriter::new();
        for &v in &values {
            write_mv_component(&mut w, v);
        }
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        for &v in &values {
            assert_eq!(read_mv_component(&mut r), v);
        }
    }

    #[test]
    fn sparse_blocks_cost_few_bytes() {
        let mut w = BoolWriter::new();
        for _ in 0..64 {
            write_coeffs(&mut w, &[0i32; 16]);
        }
        let data = w.finish();
        // 1024 zero symbols at p=160/256 ≈ 0.68 bit each.
        assert!(data.len() < 120, "{} bytes", data.len());
    }
}
