//! Planar frames, tracked planes, and the synthetic video source.

use pim_core::rng::SplitMix64;
use pim_core::{AccessKind, Buffer, SimContext};

/// One 8-bit image plane (luma; chroma planes are half-size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// A plane filled with `value`.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Self { width, height, data: vec![value; width * height] }
    }

    /// A mid-gray plane (the keyframe predictor).
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 128)
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.width * self.height) as u64
    }

    /// Pixel at `(x, y)` with edge clamping (codec border extension).
    pub fn pixel_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        self.data[y * self.width + x]
    }

    /// Set pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// One row.
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Peak signal-to-noise ratio against another plane, in dB.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn psnr(&self, other: &Plane) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height), "size mismatch");
        let mse: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

/// A plane bound to simulated addresses: real pixels plus traffic reporting.
#[derive(Debug, Clone)]
pub struct TrackedPlane {
    /// The pixel data.
    pub plane: Plane,
    buf: Buffer,
}

impl TrackedPlane {
    /// Bind a plane to freshly allocated simulated memory.
    pub fn new(ctx: &mut SimContext, plane: Plane) -> Self {
        let buf = ctx.alloc(plane.bytes());
        Self { plane, buf }
    }

    /// Report access to the rectangle `(x, y, w, h)`, one ranged access per
    /// row (how a streaming engine or cache sees 2-D block traffic).
    /// Coordinates are clamped to the plane.
    pub fn touch_rect(&self, ctx: &mut SimContext, x: isize, y: isize, w: usize, h: usize, kind: AccessKind) {
        let pw = self.plane.width() as isize;
        let ph = self.plane.height() as isize;
        for dy in 0..h as isize {
            let yy = (y + dy).clamp(0, ph - 1);
            let x0 = x.clamp(0, pw - 1);
            let x1 = (x + w as isize).clamp(1, pw);
            let n = (x1 - x0).max(1) as u64;
            let off = (yy * pw + x0) as u64;
            ctx.access(self.buf.addr(off), n, kind);
        }
    }

    /// Report a whole-plane streaming access.
    pub fn touch_all(&self, ctx: &mut SimContext, kind: AccessKind) {
        for y in 0..self.plane.height() {
            let off = (y * self.plane.width()) as u64;
            ctx.access(self.buf.addr(off), self.plane.width() as u64, kind);
        }
    }
}

/// Deterministic synthetic video: a textured background panning at a
/// non-integer velocity (so most motion is sub-pixel, as in natural
/// video), plus moving rectangles and optional sensor noise.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    width: usize,
    height: usize,
    noise: u8,
    seed: u64,
}

impl SyntheticVideo {
    /// A source of `width` x `height` frames.
    ///
    /// `noise` adds +/- that much per-pixel per-frame noise (capture grain);
    /// 0 gives perfectly predictable content.
    ///
    /// # Panics
    ///
    /// Panics unless dimensions are positive multiples of 16.
    pub fn new(width: usize, height: usize, noise: u8, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        assert!(width.is_multiple_of(16) && height.is_multiple_of(16), "dimensions must be multiples of 16");
        Self { width, height, noise, seed }
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Generate frame `index`.
    pub fn frame(&self, index: usize) -> Plane {
        let mut p = Plane::new(self.width, self.height);
        // Global pan at 1.375 px/frame horizontally, 0.625 vertically:
        // forces 1/8-pel motion vectors.
        let ox = index as f64 * 1.375;
        let oy = index as f64 * 0.625;
        let mut noise_rng = SplitMix64::new(self.seed ^ (index as u64).wrapping_mul(0x9E37));
        // Column-only subexpressions of the texture, hoisted out of the
        // row loop. Each is the exact f64 expression the per-pixel form
        // evaluates, so the output is bit-identical.
        let mut col_sin = Vec::with_capacity(self.width);
        let mut col_phase = Vec::with_capacity(self.width);
        let mut col_grad = Vec::with_capacity(self.width);
        for x in 0..self.width {
            let u = x as f64 + ox;
            col_sin.push((u * 0.131).sin());
            col_phase.push(u * 0.023);
            col_grad.push((x as f64 / self.width as f64) * 24.0);
        }
        let noise = self.noise;
        for y in 0..self.height {
            let v = y as f64 + oy;
            let row_cos = (v * 0.077).cos();
            let row_phase = v * 0.041;
            let row = &mut p.data[y * self.width..(y + 1) * self.width];
            for (x, px) in row.iter_mut().enumerate() {
                // Smooth texture: two incommensurate sinusoids + gradient.
                let t = 96.0
                    + 60.0 * (col_sin[x] * row_cos)
                    + 40.0 * ((col_phase[x] + row_phase).sin())
                    + col_grad[x];
                let mut val = t.clamp(0.0, 255.0) as i32;
                if noise > 0 {
                    let n = noise_rng.next_below(2 * noise as u64 + 1) as i32 - noise as i32;
                    val += n;
                }
                *px = val.clamp(0, 255) as u8;
            }
        }
        // A foreground object moving against the pan.
        let bx = (self.width as f64 * 0.25 + index as f64 * 2.5) as usize % (self.width - 16);
        let by = self.height / 3;
        for y in by..(by + 12).min(self.height) {
            for x in bx..(bx + 14).min(self.width) {
                p.set_pixel(x, y, 230);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::Platform;

    #[test]
    fn plane_accessors_and_clamping() {
        let mut p = Plane::new(16, 16);
        p.set_pixel(0, 0, 10);
        assert_eq!(p.pixel(0, 0), 10);
        assert_eq!(p.pixel_clamped(-5, -5), 10);
        assert_eq!(p.pixel_clamped(100, 0), p.pixel(15, 0));
        assert_eq!(p.row(0)[0], 10);
    }

    #[test]
    fn psnr_identity_is_infinite() {
        let p = SyntheticVideo::new(32, 32, 0, 1).frame(0);
        assert!(p.psnr(&p).is_infinite());
        let q = SyntheticVideo::new(32, 32, 0, 1).frame(3);
        assert!(p.psnr(&q) < 40.0);
    }

    #[test]
    fn video_is_deterministic_and_moving() {
        let v = SyntheticVideo::new(64, 48, 2, 9);
        assert_eq!(v.frame(1), v.frame(1));
        assert_ne!(v.frame(0), v.frame(1));
    }

    #[test]
    fn consecutive_frames_correlate_more_than_distant_ones() {
        // Temporal redundancy: the property motion estimation exploits.
        let v = SyntheticVideo::new(64, 64, 0, 4);
        let f0 = v.frame(0);
        assert!(f0.psnr(&v.frame(1)) > f0.psnr(&v.frame(8)));
    }

    #[test]
    fn tracked_plane_reports_rect_traffic() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let tp = TrackedPlane::new(&mut ctx, Plane::new(64, 64));
        let before = ctx.total_activity().l1_accesses;
        tp.touch_rect(&mut ctx, 0, 0, 64, 4, AccessKind::Read);
        assert_eq!(ctx.total_activity().l1_accesses - before, 4);
    }

    #[test]
    fn touch_rect_clamps_out_of_bounds() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let tp = TrackedPlane::new(&mut ctx, Plane::new(32, 32));
        // Must not panic at negative or overflowing coordinates.
        tp.touch_rect(&mut ctx, -8, -8, 16, 16, AccessKind::Read);
        tp.touch_rect(&mut ctx, 28, 28, 16, 16, AccessKind::Write);
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn unaligned_video_panics() {
        SyntheticVideo::new(100, 64, 0, 1);
    }
}
