//! Planar frames, tracked planes, and the synthetic video source.

use pim_core::rng::SplitMix64;
use pim_core::{AccessKind, Buffer, SimContext};

/// One 8-bit image plane (luma; chroma planes are half-size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// A plane filled with `value`.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Self { width, height, data: vec![value; width * height] }
    }

    /// A mid-gray plane (the keyframe predictor).
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 128)
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.width * self.height) as u64
    }

    /// Pixel at `(x, y)` with edge clamping (codec border extension).
    pub fn pixel_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        self.data[y * self.width + x]
    }

    /// Set pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// One row.
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Peak signal-to-noise ratio against another plane, in dB.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn psnr(&self, other: &Plane) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height), "size mismatch");
        let mse: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

/// A plane bound to simulated addresses: real pixels plus traffic reporting.
#[derive(Debug, Clone)]
pub struct TrackedPlane {
    /// The pixel data.
    pub plane: Plane,
    buf: Buffer,
}

impl TrackedPlane {
    /// Bind a plane to freshly allocated simulated memory.
    pub fn new(ctx: &mut SimContext, plane: Plane) -> Self {
        let buf = ctx.alloc(plane.bytes());
        Self { plane, buf }
    }

    /// Report access to the rectangle `(x, y, w, h)` as one ranged access
    /// per row (how a streaming engine or cache sees 2-D block traffic).
    /// Coordinates are clamped to the plane.
    ///
    /// Edge clamping folds the rows into at most three stride/run-length
    /// descriptors — rows clamped onto the top edge (stride 0), the
    /// in-bounds middle (stride = plane width), rows clamped onto the
    /// bottom edge (stride 0) — handed to the ranged engine in the same
    /// order the per-row loop would issue them.
    pub fn touch_rect(&self, ctx: &mut SimContext, x: isize, y: isize, w: usize, h: usize, kind: AccessKind) {
        let pw = self.plane.width() as isize;
        let ph = self.plane.height() as isize;
        let h = h as isize;
        let x0 = x.clamp(0, pw - 1);
        let x1 = (x + w as isize).clamp(1, pw);
        let n = (x1 - x0).max(1) as u64;
        let top = (-y).clamp(0, h);
        let mid = ((ph - y).clamp(0, h) - top).max(0);
        let bot = h - top - mid;
        if top > 0 {
            ctx.access_range(self.buf.addr(x0 as u64), n, 0, top as u64, kind);
        }
        if mid > 0 {
            let off = ((y + top) * pw + x0) as u64;
            ctx.access_range(self.buf.addr(off), n, pw as u64, mid as u64, kind);
        }
        if bot > 0 {
            let off = ((ph - 1) * pw + x0) as u64;
            ctx.access_range(self.buf.addr(off), n, 0, bot as u64, kind);
        }
    }

    /// Report a whole-plane streaming access: one row-per-scanline
    /// descriptor for the ranged engine.
    pub fn touch_all(&self, ctx: &mut SimContext, kind: AccessKind) {
        let w = self.plane.width() as u64;
        ctx.access_range(self.buf.addr(0), w, w, self.plane.height() as u64, kind);
    }
}

/// Deterministic synthetic video: a textured background panning at a
/// non-integer velocity (so most motion is sub-pixel, as in natural
/// video), plus moving rectangles and optional sensor noise.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    width: usize,
    height: usize,
    noise: u8,
    seed: u64,
}

impl SyntheticVideo {
    /// A source of `width` x `height` frames.
    ///
    /// `noise` adds +/- that much per-pixel per-frame noise (capture grain);
    /// 0 gives perfectly predictable content.
    ///
    /// # Panics
    ///
    /// Panics unless dimensions are positive multiples of 16.
    pub fn new(width: usize, height: usize, noise: u8, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        assert!(width.is_multiple_of(16) && height.is_multiple_of(16), "dimensions must be multiples of 16");
        Self { width, height, noise, seed }
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Generate frame `index`.
    pub fn frame(&self, index: usize) -> Plane {
        let mut p = Plane::new(self.width, self.height);
        // Global pan at 1.375 px/frame horizontally, 0.625 vertically:
        // forces 1/8-pel motion vectors.
        let ox = index as f64 * 1.375;
        let oy = index as f64 * 0.625;
        let mut noise_rng = SplitMix64::new(self.seed ^ (index as u64).wrapping_mul(0x9E37));
        // Column-only subexpressions of the texture, hoisted out of the
        // row loop. Each is the exact f64 expression the per-pixel form
        // evaluates, so the output is bit-identical.
        let mut col_sin = Vec::with_capacity(self.width);
        let mut col_phase = Vec::with_capacity(self.width);
        let mut col_psin = Vec::with_capacity(self.width);
        let mut col_pcos = Vec::with_capacity(self.width);
        let mut col_grad = Vec::with_capacity(self.width);
        for x in 0..self.width {
            let u = x as f64 + ox;
            col_sin.push((u * 0.131).sin());
            let phase = u * 0.023;
            col_phase.push(phase);
            col_psin.push(phase.sin());
            col_pcos.push(phase.cos());
            col_grad.push((x as f64 / self.width as f64) * 24.0);
        }
        let noise = self.noise;
        let mut trow = vec![0.0f64; self.width];
        for y in 0..self.height {
            let v = y as f64 + oy;
            let row_cos = (v * 0.077).cos();
            let row_phase = v * 0.041;
            let rp_sin = row_phase.sin();
            let rp_cos = row_phase.cos();
            // Pass 1 (auto-vectorizable, no branches or libm): the second
            // sinusoid expands sin(col + row) via the angle addition
            // identity — a few ulps of error, ~1e-14 absolute. Zipped
            // iterators keep bounds checks out of the inner loop.
            for ((((t, &cs), &ps), &pc), &g) in
                trow.iter_mut().zip(&col_sin).zip(&col_psin).zip(&col_pcos).zip(&col_grad)
            {
                // Smooth texture: two incommensurate sinusoids + gradient.
                *t = 96.0 + 60.0 * (cs * row_cos) + 40.0 * (ps * rp_cos + pc * rp_sin) + g;
            }
            // Pass 2 (scalar: the noise RNG is sequential). The only
            // consumer of t is the integer truncation, which changes only
            // when t crosses an integer; if t lands within 1e-7 of one,
            // fall back to the direct libm expression so the output stays
            // bit-identical to the per-pixel form.
            let row = &mut p.data[y * self.width..(y + 1) * self.width];
            for (x, (px, &tv)) in row.iter_mut().zip(&trow).enumerate() {
                let mut t = tv;
                let frac = (t - t as i64 as f64).abs();
                if !(1e-7..=1.0 - 1e-7).contains(&frac) {
                    t = 96.0
                        + 60.0 * (col_sin[x] * row_cos)
                        + 40.0 * ((col_phase[x] + row_phase).sin())
                        + col_grad[x];
                }
                let mut val = t.clamp(0.0, 255.0) as i32;
                if noise > 0 {
                    let n = noise_rng.next_below(2 * noise as u64 + 1) as i32 - noise as i32;
                    val += n;
                }
                *px = val.clamp(0, 255) as u8;
            }
        }
        // A foreground object moving against the pan.
        let bx = (self.width as f64 * 0.25 + index as f64 * 2.5) as usize % (self.width - 16);
        let by = self.height / 3;
        for y in by..(by + 12).min(self.height) {
            for x in bx..(bx + 14).min(self.width) {
                p.set_pixel(x, y, 230);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::Platform;

    #[test]
    fn plane_accessors_and_clamping() {
        let mut p = Plane::new(16, 16);
        p.set_pixel(0, 0, 10);
        assert_eq!(p.pixel(0, 0), 10);
        assert_eq!(p.pixel_clamped(-5, -5), 10);
        assert_eq!(p.pixel_clamped(100, 0), p.pixel(15, 0));
        assert_eq!(p.row(0)[0], 10);
    }

    #[test]
    fn psnr_identity_is_infinite() {
        let p = SyntheticVideo::new(32, 32, 0, 1).frame(0);
        assert!(p.psnr(&p).is_infinite());
        let q = SyntheticVideo::new(32, 32, 0, 1).frame(3);
        assert!(p.psnr(&q) < 40.0);
    }

    #[test]
    fn frame_matches_direct_per_pixel_formula() {
        // The fast angle-addition synthesis must stay bit-identical to the
        // original per-pixel libm expression.
        for &(w, h, noise, seed) in &[(64usize, 48usize, 0u8, 1u64), (48, 64, 2, 0xd0), (128, 32, 3, 0x3e)] {
            let v = SyntheticVideo::new(w, h, noise, seed);
            for index in [0usize, 1, 7, 23] {
                let got = v.frame(index);
                let mut want = Plane::new(w, h);
                let ox = index as f64 * 1.375;
                let oy = index as f64 * 0.625;
                let mut rng = SplitMix64::new(seed ^ (index as u64).wrapping_mul(0x9E37));
                for y in 0..h {
                    let vf = y as f64 + oy;
                    let row_cos = (vf * 0.077).cos();
                    let row_phase = vf * 0.041;
                    for x in 0..w {
                        let u = x as f64 + ox;
                        let t = 96.0
                            + 60.0 * ((u * 0.131).sin() * row_cos)
                            + 40.0 * ((u * 0.023 + row_phase).sin())
                            + (x as f64 / w as f64) * 24.0;
                        let mut val = t.clamp(0.0, 255.0) as i32;
                        if noise > 0 {
                            val += rng.next_below(2 * noise as u64 + 1) as i32 - noise as i32;
                        }
                        want.set_pixel(x, y, val.clamp(0, 255) as u8);
                    }
                }
                let bx = (w as f64 * 0.25 + index as f64 * 2.5) as usize % (w - 16);
                let by = h / 3;
                for y in by..(by + 12).min(h) {
                    for x in bx..(bx + 14).min(w) {
                        want.set_pixel(x, y, 230);
                    }
                }
                assert_eq!(got, want, "{w}x{h} noise={noise} seed={seed:#x} frame {index}");
            }
        }
    }

    #[test]
    fn video_is_deterministic_and_moving() {
        let v = SyntheticVideo::new(64, 48, 2, 9);
        assert_eq!(v.frame(1), v.frame(1));
        assert_ne!(v.frame(0), v.frame(1));
    }

    #[test]
    fn consecutive_frames_correlate_more_than_distant_ones() {
        // Temporal redundancy: the property motion estimation exploits.
        let v = SyntheticVideo::new(64, 64, 0, 4);
        let f0 = v.frame(0);
        assert!(f0.psnr(&v.frame(1)) > f0.psnr(&v.frame(8)));
    }

    #[test]
    fn tracked_plane_reports_rect_traffic() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let tp = TrackedPlane::new(&mut ctx, Plane::new(64, 64));
        let before = ctx.total_activity().l1_accesses;
        tp.touch_rect(&mut ctx, 0, 0, 64, 4, AccessKind::Read);
        assert_eq!(ctx.total_activity().l1_accesses - before, 4);
    }

    #[test]
    fn touch_rect_clamps_out_of_bounds() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let tp = TrackedPlane::new(&mut ctx, Plane::new(32, 32));
        // Must not panic at negative or overflowing coordinates.
        tp.touch_rect(&mut ctx, -8, -8, 16, 16, AccessKind::Read);
        tp.touch_rect(&mut ctx, 28, 28, 16, 16, AccessKind::Write);
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn unaligned_video_panics() {
        SyntheticVideo::new(100, 64, 0, 1);
    }
}
