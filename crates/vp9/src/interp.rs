//! Sub-pixel interpolation with VP9-class 8-tap filters (paper §6.2.2).
//!
//! Motion vectors have 1/8-pel resolution; when one points between pixel
//! centers the predictor is built by separable 8-tap FIR filtering —
//! horizontal then vertical — over an 11x11-ish neighborhood per 4x4
//! block (the paper's worst case). This is the single largest source of
//! data movement in both software and hardware VP9 (§6.2.1, §6.3.1): for
//! every output pixel ~2.9 reference pixels are fetched.

use crate::frame::Plane;

/// Number of distinct sub-pixel phases (1/8-pel in each axis).
pub const SUBPEL_SHIFTS: usize = 8;

/// VP9-class regular 8-tap filter bank, one row per 1/8-pel phase.
///
/// Every row sums to 128 (unity gain at 7-bit precision); phase 0 is the
/// integer-position passthrough.
pub const SUBPEL_FILTERS: [[i32; 8]; SUBPEL_SHIFTS] = [
    [0, 0, 0, 128, 0, 0, 0, 0],
    [-1, 3, -10, 122, 18, -4, 1, -1],
    [-1, 4, -16, 112, 37, -11, 4, -1],
    [-1, 5, -19, 97, 58, -16, 5, -1],
    [-1, 6, -19, 78, 78, -19, 6, -1],
    [-1, 5, -16, 58, 97, -19, 5, -1],
    [-1, 4, -11, 37, 112, -16, 4, -1],
    [-1, 1, -4, 18, 122, -10, 3, -1],
];

/// Rounding right-shift by 7 (filters are 7-bit fixed point).
fn round7(v: i32) -> i32 {
    (v + 64) >> 7
}

/// Interpolate a `w` x `h` block from `reference` at position
/// `(x8, y8)` given in 1/8-pel units.
///
/// Integer phases degrade to a plain (clamped) block copy. Out-of-frame
/// taps use edge replication, as in the real codec.
pub fn interpolate_block(reference: &Plane, x8: isize, y8: isize, w: usize, h: usize) -> Vec<u8> {
    let mut tmp = Vec::new();
    let mut out = Vec::new();
    interpolate_block_into(reference, x8, y8, w, h, &mut tmp, &mut out);
    out
}

/// [`interpolate_block`] writing into caller-owned scratch, so hot loops
/// (sub-pel motion refinement, per-block interpolation sweeps) reuse the
/// temp row buffer and output vector instead of allocating per call.
///
/// `tmp` holds the horizontal pass: after `round7(..).clamp(0, 255)`
/// every intermediate fits `i16` (in fact `u8`), and the vertical-pass
/// accumulators stay far below `i32::MAX`, so integer sums are exact and
/// order-independent — the tap loops below accumulate coefficient-outer
/// (better vectorization) yet produce bit-identical results to the
/// per-pixel tap-inner form.
pub fn interpolate_block_into(
    reference: &Plane,
    x8: isize,
    y8: isize,
    w: usize,
    h: usize,
    tmp: &mut Vec<i16>,
    out: &mut Vec<u8>,
) {
    let x0 = x8.div_euclid(8);
    let y0 = y8.div_euclid(8);
    let fx = x8.rem_euclid(8) as usize;
    let fy = y8.rem_euclid(8) as usize;
    out.clear();
    out.resize(w * h, 0);

    let pw = reference.width() as isize;
    let ph = reference.height() as isize;

    if fx == 0 && fy == 0 {
        for dy in 0..h {
            let row = reference.row((y0 + dy as isize).clamp(0, ph - 1) as usize);
            let orow = &mut out[dy * w..dy * w + w];
            if x0 >= 0 && x0 + w as isize <= pw {
                orow.copy_from_slice(&row[x0 as usize..x0 as usize + w]);
            } else {
                for (dx, o) in orow.iter_mut().enumerate() {
                    *o = row[(x0 + dx as isize).clamp(0, pw - 1) as usize];
                }
            }
        }
        return;
    }

    // Accumulator chunk: blocks are at most 64 wide in practice; wider
    // requests fall back to per-pixel accumulation below.
    const CHUNK: usize = 64;

    // Horizontal pass over h+7 rows into a temp buffer. Interior blocks
    // (all eight taps in-frame) index the row slice directly; edge blocks
    // fall back to per-tap clamping.
    let tmp_h = h + 7;
    tmp.clear();
    tmp.resize(w * tmp_h, 0);
    let hf = &SUBPEL_FILTERS[fx];
    let interior_x = x0 - 3 >= 0 && x0 + w as isize + 4 <= pw;
    for ty in 0..tmp_h {
        let row = reference.row((y0 + ty as isize - 3).clamp(0, ph - 1) as usize);
        let trow = &mut tmp[ty * w..ty * w + w];
        if interior_x && w <= CHUNK {
            let base = (x0 - 3) as usize;
            let mut acc = [0i32; CHUNK];
            for (t, &c) in hf.iter().enumerate() {
                for (a, &px) in acc[..w].iter_mut().zip(&row[base + t..base + t + w]) {
                    *a += c * px as i32;
                }
            }
            for (o, &a) in trow.iter_mut().zip(&acc[..w]) {
                *o = round7(a).clamp(0, 255) as i16;
            }
        } else if interior_x {
            let base = (x0 - 3) as usize;
            for (dx, o) in trow.iter_mut().enumerate() {
                let taps = &row[base + dx..base + dx + 8];
                let mut acc = 0i32;
                for (t, &c) in hf.iter().enumerate() {
                    acc += c * taps[t] as i32;
                }
                *o = round7(acc).clamp(0, 255) as i16;
            }
        } else {
            for (dx, o) in trow.iter_mut().enumerate() {
                let mut acc = 0i32;
                for (t, &c) in hf.iter().enumerate() {
                    let sx = (x0 + dx as isize + t as isize - 3).clamp(0, pw - 1);
                    acc += c * row[sx as usize] as i32;
                }
                *o = round7(acc).clamp(0, 255) as i16;
            }
        }
    }
    // Vertical pass, also coefficient-outer over contiguous rows.
    let vf = &SUBPEL_FILTERS[fy];
    for dy in 0..h {
        let orow = &mut out[dy * w..dy * w + w];
        if w <= CHUNK {
            let mut acc = [0i32; CHUNK];
            for (t, &c) in vf.iter().enumerate() {
                let srow = &tmp[(dy + t) * w..(dy + t) * w + w];
                for (a, &v) in acc[..w].iter_mut().zip(srow) {
                    *a += c * v as i32;
                }
            }
            for (o, &a) in orow.iter_mut().zip(&acc[..w]) {
                *o = round7(a).clamp(0, 255) as u8;
            }
        } else {
            for (dx, o) in orow.iter_mut().enumerate() {
                let mut acc = 0i32;
                for (t, &c) in vf.iter().enumerate() {
                    acc += c * tmp[(dy + t) * w + dx] as i32;
                }
                *o = round7(acc).clamp(0, 255) as u8;
            }
        }
    }
}

/// Reference pixels fetched per output pixel for a given block size and
/// sub-pel phase (the §6.3.1 overfetch ratio; ~2.9 averaged over phases
/// for 4x4 blocks).
pub fn overfetch_ratio(w: usize, h: usize, subpel: bool) -> f64 {
    if subpel {
        ((w + 7) * (h + 7)) as f64 / (w * h) as f64
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SyntheticVideo;

    #[test]
    fn all_filter_rows_sum_to_unity() {
        for (i, row) in SUBPEL_FILTERS.iter().enumerate() {
            assert_eq!(row.iter().sum::<i32>(), 128, "phase {i}");
        }
    }

    #[test]
    fn phase_zero_is_a_copy() {
        let p = SyntheticVideo::new(32, 32, 0, 1).frame(0);
        let b = interpolate_block(&p, 8 * 4, 8 * 5, 8, 8);
        for dy in 0..8 {
            for dx in 0..8 {
                assert_eq!(b[dy * 8 + dx], p.pixel(4 + dx, 5 + dy));
            }
        }
    }

    #[test]
    fn constant_region_interpolates_to_itself() {
        let p = crate::frame::Plane::filled(32, 32, 77);
        for phase in 0..8isize {
            let b = interpolate_block(&p, 8 * 10 + phase, 8 * 10 + phase, 4, 4);
            assert!(b.iter().all(|&v| v == 77), "phase {phase}: {b:?}");
        }
    }

    #[test]
    fn half_pel_on_ramp_is_midpoint() {
        // A horizontal ramp: half-pel samples sit between neighbors.
        let mut p = crate::frame::Plane::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                p.set_pixel(x, y, (x * 8) as u8);
            }
        }
        let b = interpolate_block(&p, 8 * 12 + 4, 8 * 12, 4, 4);
        let exact = p.pixel(12, 12) as i32;
        let next = p.pixel(13, 12) as i32;
        let mid = (exact + next) / 2;
        assert!((b[0] as i32 - mid).abs() <= 1, "{} vs {mid}", b[0]);
    }

    #[test]
    fn out_of_frame_taps_use_edge_replication() {
        let p = crate::frame::Plane::filled(16, 16, 200);
        let b = interpolate_block(&p, -8 * 2 + 3, -8 * 2 + 5, 4, 4);
        assert!(b.iter().all(|&v| v == 200));
    }

    #[test]
    fn subpel_shifts_track_motion() {
        // Interpolating frame k at the pan offset should approximate
        // frame k+1 (the whole point of motion compensation).
        let v = SyntheticVideo::new(64, 64, 0, 2);
        let f0 = v.frame(0);
        let f1 = v.frame(1);
        // Pan is (1.375, 0.625) px/frame => (11, 5) in 1/8-pel.
        // Sample a background block away from the foreground object.
        let pred = interpolate_block(&f0, 8 * 40 + 11, 8 * 8 + 5, 8, 8);
        let mut err = 0i64;
        let mut base = 0i64;
        for dy in 0..8 {
            for dx in 0..8 {
                let actual = f1.pixel(40 + dx, 8 + dy) as i64;
                err += (pred[dy * 8 + dx] as i64 - actual).abs();
                base += (f0.pixel(40 + dx, 8 + dy) as i64 - actual).abs();
            }
        }
        assert!(err < base / 2, "interp err {err} vs no-mc {base}");
    }

    #[test]
    fn overfetch_matches_paper_ballpark() {
        // §6.3.1: ~2.9 reference pixels per current pixel on average.
        let r4 = overfetch_ratio(4, 4, true);
        assert!(r4 > 7.0, "4x4 worst case is 11x11 reads: {r4}");
        let r16 = overfetch_ratio(16, 16, true);
        assert!((2.0..2.3).contains(&r16), "16x16: {r16}");
        assert_eq!(overfetch_ratio(16, 16, false), 1.0);
    }
}
