//! The in-loop deblocking filter (paper §6.2.2).
//!
//! Block-based prediction leaves discontinuities at block borders. The
//! loop filter walks every 8-pixel block edge, tests whether the pixels
//! straddling it look like a blocking artifact rather than a real edge,
//! and if so applies a short low-pass filter (VP8/VP9's `filter4`): up to
//! two pixels on each side are adjusted. It is arithmetic-and-bitwise
//! only, but touches every block edge in the frame with poor locality —
//! the paper's second video PIM target.

use crate::frame::Plane;

/// Edge threshold: skip filtering across real edges.
const EDGE_LIMIT: i32 = 24;
/// Inner threshold on second-neighbor differences.
const INTERIOR_LIMIT: i32 = 6;

fn clamp_s7(v: i32) -> i32 {
    v.clamp(-128, 127)
}

/// The VP8-style 4-tap edge filter applied to one pixel quad
/// `(p1, p0 | q0, q1)` (values 0..255). Returns the filtered quad.
pub fn filter4(p1: u8, p0: u8, q0: u8, q1: u8) -> (u8, u8, u8, u8) {
    // Work on sign-shifted values, as the codec does.
    let (p1s, p0s, q0s, q1s) =
        (p1 as i32 - 128, p0 as i32 - 128, q0 as i32 - 128, q1 as i32 - 128);
    let a = clamp_s7(clamp_s7(p1s - q1s) + 3 * (q0s - p0s));
    let f1 = clamp_s7(a + 4) >> 3;
    let f2 = clamp_s7(a + 3) >> 3;
    let q0n = clamp_s7(q0s - f1) + 128;
    let p0n = clamp_s7(p0s + f2) + 128;
    // Outer pixels move by half the inner adjustment.
    let a2 = (f1 + 1) >> 1;
    let q1n = clamp_s7(q1s - a2) + 128;
    let p1n = clamp_s7(p1s + a2) + 128;
    (p1n as u8, p0n as u8, q0n as u8, q1n as u8)
}

/// Whether the quad straddles a filterable (artifact-like) edge.
pub fn should_filter(p1: u8, p0: u8, q0: u8, q1: u8) -> bool {
    let step = (p0 as i32 - q0 as i32).abs();
    let gentle = (p1 as i32 - p0 as i32).abs() <= INTERIOR_LIMIT
        && (q1 as i32 - q0 as i32).abs() <= INTERIOR_LIMIT;
    step > 0 && step * 2 + (p1 as i32 - q1 as i32).abs() / 2 <= EDGE_LIMIT && gentle
}

/// Statistics of one deblocking pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeblockStats {
    /// Edge pixel quads examined.
    pub examined: u64,
    /// Quads actually filtered.
    pub filtered: u64,
}

/// Filter all vertical and horizontal 8x8 block edges of a plane in place.
pub fn deblock_plane(plane: &mut Plane, block: usize) -> DeblockStats {
    let mut stats = DeblockStats::default();
    let (w, h) = (plane.width(), plane.height());
    let data = plane.data_mut();
    // Vertical edges (filter across columns).
    for ex in (block..w).step_by(block) {
        let xq = (ex + 1).min(w - 1);
        for y in 0..h {
            let row = &mut data[y * w..(y + 1) * w];
            let quad = (row[ex - 2], row[ex - 1], row[ex], row[xq]);
            stats.examined += 1;
            if should_filter(quad.0, quad.1, quad.2, quad.3) {
                let (p1, p0, q0, q1) = filter4(quad.0, quad.1, quad.2, quad.3);
                row[ex - 2] = p1;
                row[ex - 1] = p0;
                row[ex] = q0;
                row[xq] = q1;
                stats.filtered += 1;
            }
        }
    }
    // Horizontal edges (filter across rows).
    for ey in (block..h).step_by(block) {
        let yq = (ey + 1).min(h - 1);
        for x in 0..w {
            let (i1, i0) = ((ey - 2) * w + x, (ey - 1) * w + x);
            let (j0, j1) = (ey * w + x, yq * w + x);
            let quad = (data[i1], data[i0], data[j0], data[j1]);
            stats.examined += 1;
            if should_filter(quad.0, quad.1, quad.2, quad.3) {
                let (p1, p0, q0, q1) = filter4(quad.0, quad.1, quad.2, quad.3);
                data[i1] = p1;
                data[i0] = p0;
                data[j0] = q0;
                data[j1] = q1;
                stats.filtered += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_region_untouched() {
        // No step at the edge: nothing to filter.
        assert!(!should_filter(80, 80, 80, 80));
        let mut p = Plane::filled(32, 32, 80);
        deblock_plane(&mut p, 8);
        assert!(p.data().iter().all(|&v| v == 80));
    }

    #[test]
    fn small_step_is_smoothed() {
        let (p1, p0, q0, q1) = (100, 100, 108, 108);
        assert!(should_filter(p1, p0, q0, q1));
        let (np1, np0, nq0, nq1) = filter4(p1, p0, q0, q1);
        let step_before = (q0 as i32 - p0 as i32).abs();
        let step_after = (nq0 as i32 - np0 as i32).abs();
        assert!(step_after < step_before, "{step_after} vs {step_before}");
        // Outer pixels move toward the edge, monotonically.
        assert!(np1 >= p1 && nq1 <= q1);
    }

    #[test]
    fn strong_real_edge_is_preserved() {
        // A 0 -> 255 edge must not be filtered (it is real content).
        assert!(!should_filter(0, 0, 255, 255));
    }

    #[test]
    fn blocky_plane_gets_smoother() {
        // Alternate 8x8 blocks of two nearby values: classic blockiness.
        let mut p = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                let v = if ((x / 8) + (y / 8)) % 2 == 0 { 100 } else { 108 };
                p.set_pixel(x, y, v);
            }
        }
        let stats = deblock_plane(&mut p, 8);
        assert!(stats.filtered > 0);
        assert!(stats.filtered <= stats.examined);
        // Edge steps shrank.
        let step = (p.pixel(7, 0) as i32 - p.pixel(8, 0) as i32).abs();
        assert!(step < 8, "step {step}");
    }

    #[test]
    fn filter_preserves_pixel_range() {
        for a in [0u8, 1, 127, 128, 254, 255] {
            let (p1, p0, q0, q1) = filter4(a, a.wrapping_add(3), a.wrapping_add(5), a.wrapping_add(9));
            // All outputs are valid u8 by construction; sanity-check order.
            let _ = (p1, p0, q0, q1);
        }
    }
}
