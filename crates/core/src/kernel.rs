//! The kernel abstraction: a PIM-target candidate as runnable code.

use crate::context::SimContext;

/// A workload kernel that can execute on any engine.
///
/// Implementations perform their *real* computation (the reproduction's
/// kernels produce verifiable outputs) while reporting loads, stores and
/// retired operations to the [`SimContext`]. The same `run` is executed on
/// the CPU, the PIM core and the PIM accelerator; only the context's engine
/// and memory path differ, mirroring how the paper evaluates each PIM
/// target in isolation (§9).
pub trait Kernel {
    /// Stable name used in reports (e.g. `"texture_tiling"`).
    fn name(&self) -> &'static str;

    /// Execute the kernel against the context.
    fn run(&mut self, ctx: &mut SimContext);

    /// Approximate bytes of data shared with the host across the offload
    /// boundary; drives the §8.2 coherence flush/invalidate cost. Zero for
    /// kernels evaluated standalone.
    fn working_set_bytes(&self) -> u64 {
        0
    }

    /// Ops per element ratio hint for reports (optional diagnostics).
    fn is_compute_intensive(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use pim_cpusim::OpMix;

    struct Nop;
    impl Kernel for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&mut self, ctx: &mut SimContext) {
            ctx.ops(OpMix::scalar(1));
        }
    }

    #[test]
    fn defaults_are_sane() {
        let mut k = Nop;
        assert_eq!(k.name(), "nop");
        assert_eq!(k.working_set_bytes(), 0);
        assert!(!k.is_compute_intensive());
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        k.run(&mut ctx);
        assert_eq!(ctx.instructions(), 1);
    }
}
