//! Platform presets reproducing Table 1 of the paper.

use pim_energy::EnergyParams;
use pim_memsim::{CoherenceConfig, DramKind, MemConfig};

/// A complete simulated platform: memory system, energy constants,
/// coherence parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Energy constants.
    pub energy: EnergyParams,
    /// CPU↔PIM coherence parameters.
    pub coherence: CoherenceConfig,
}

impl Platform {
    /// The CPU-only baseline: SoC caches in front of LPDDR3 (Table 1,
    /// "Baseline Memory" row).
    pub fn baseline() -> Self {
        Self {
            mem: MemConfig::chromebook_like(),
            energy: EnergyParams::default(),
            coherence: CoherenceConfig::default(),
        }
    }

    /// The PIM-capable device: the same SoC with 2 GB of 3D-stacked memory,
    /// 16 vaults, 256 GB/s internal and 32 GB/s off-chip bandwidth
    /// (Table 1, "3D-Stacked Memory" row).
    pub fn pim() -> Self {
        Self {
            mem: MemConfig::pim_device(),
            ..Self::baseline()
        }
    }

    /// A cache-scaled platform for small-input tests: capacities divided
    /// by `shrink` so that test-sized working sets exhibit the same
    /// cache-pressure behaviour as full-sized workloads on Table 1's
    /// hierarchy. Timing/energy constants are unchanged.
    pub fn reduced(shrink: u64) -> Self {
        let mut p = Self::baseline();
        let s = shrink.max(1);
        p.mem.cpu_l1.capacity_bytes = (p.mem.cpu_l1.capacity_bytes / s).max(4096);
        p.mem.llc.capacity_bytes = (p.mem.llc.capacity_bytes / s).max(16384);
        p
    }

    /// Render the Table 1 configuration summary.
    pub fn table1(&self) -> String {
        let mut s = String::new();
        s.push_str("SoC: 4 OoO cores, 8-wide issue; L1 I/D: 64 kB private, 4-way; ");
        s.push_str("L2: 2 MB shared, 8-way; coherence: MESI-style flush/invalidate\n");
        s.push_str("PIM core: 1 per vault, 1-wide issue, 4-wide SIMD, 32 kB L1\n");
        match self.mem.dram {
            DramKind::Stacked(c) => s.push_str(&format!(
                "3D-stacked memory: 2 GB cube, {} vaults; internal {} GB/s; off-chip {} GB/s\n",
                c.vaults, c.internal_gbps, c.offchip_gbps
            )),
            DramKind::Lpddr3 { channel_gbps, .. } => s.push_str(&format!(
                "Baseline memory: LPDDR3, 2 GB, FR-FCFS scheduler, {channel_gbps} GB/s\n"
            )),
        }
        s
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_pim() {
        assert!(!Platform::baseline().mem.supports_pim());
        assert!(Platform::pim().mem.supports_pim());
    }

    #[test]
    fn table1_mentions_key_parameters() {
        let t = Platform::pim().table1();
        assert!(t.contains("16 vaults"));
        assert!(t.contains("256 GB/s"));
        let b = Platform::baseline().table1();
        assert!(b.contains("LPDDR3"));
        assert!(b.contains("FR-FCFS"));
    }
}
