//! Area feasibility model for PIM logic (§3.3 and the per-target numbers
//! reported in §4–§7).

use std::fmt;

/// Area available per vault for new logic, in mm² (§3.3: 50–60 mm² across
/// 16 vaults ⇒ ~3.5–4.4 mm² per vault; we use the conservative end).
pub const VAULT_BUDGET_MM2: f64 = 3.5;

/// Footprint of the general-purpose PIM core, in mm² (ARM Cortex-R8-based
/// estimate, §3.3).
pub const PIM_CORE_MM2: f64 = 0.33;

/// The fixed-function PIM targets with their accelerator footprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimTargetKind {
    /// Chrome texture tiling (§4.2.2): four in-memory tiling units.
    TextureTiling,
    /// Chrome color blitting (§4.2.2): same datapath, blitting control.
    ColorBlitting,
    /// ZRAM LZO compression/decompression (§4.3.2).
    Compression,
    /// TensorFlow packing/unpacking (§5.3): tiling datapath, pack control.
    Packing,
    /// TensorFlow quantization (§5.3): tiling datapath, quant control.
    Quantization,
    /// VP9 sub-pixel interpolation (§6.2.2).
    SubPixelInterpolation,
    /// VP9 deblocking filter (§6.2.2).
    DeblockingFilter,
    /// VP9 motion estimation (§7.2.2).
    MotionEstimation,
    /// Combined MC + deblocking block of the hardware decoder (§6.3.2).
    McAndDeblock,
}

impl PimTargetKind {
    /// All targets the paper sizes.
    pub const ALL: [PimTargetKind; 9] = [
        PimTargetKind::TextureTiling,
        PimTargetKind::ColorBlitting,
        PimTargetKind::Compression,
        PimTargetKind::Packing,
        PimTargetKind::Quantization,
        PimTargetKind::SubPixelInterpolation,
        PimTargetKind::DeblockingFilter,
        PimTargetKind::MotionEstimation,
        PimTargetKind::McAndDeblock,
    ];

    /// Accelerator footprint in mm² (the numbers quoted in §4–§7).
    pub fn accelerator_mm2(self) -> f64 {
        match self {
            PimTargetKind::TextureTiling => 0.25,
            PimTargetKind::ColorBlitting => 0.25,
            PimTargetKind::Compression => 0.25,
            PimTargetKind::Packing => 0.25,
            PimTargetKind::Quantization => 0.25,
            PimTargetKind::SubPixelInterpolation => 0.21,
            PimTargetKind::DeblockingFilter => 0.12,
            PimTargetKind::MotionEstimation => 1.24,
            PimTargetKind::McAndDeblock => 0.33,
        }
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            PimTargetKind::TextureTiling => "texture tiling",
            PimTargetKind::ColorBlitting => "color blitting",
            PimTargetKind::Compression => "compression (LZO)",
            PimTargetKind::Packing => "packing",
            PimTargetKind::Quantization => "quantization",
            PimTargetKind::SubPixelInterpolation => "sub-pixel interpolation",
            PimTargetKind::DeblockingFilter => "deblocking filter",
            PimTargetKind::MotionEstimation => "motion estimation",
            PimTargetKind::McAndDeblock => "MC + deblocking",
        }
    }
}

impl fmt::Display for PimTargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Checks PIM logic against the per-vault area budget.
#[derive(Debug, Clone, Copy)]
pub struct AreaModel {
    /// Area available per vault, mm².
    pub vault_budget_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self { vault_budget_mm2: VAULT_BUDGET_MM2 }
    }
}

impl AreaModel {
    /// Fraction of the vault budget consumed by `mm2` of logic.
    pub fn fraction_of_vault(&self, mm2: f64) -> f64 {
        mm2 / self.vault_budget_mm2
    }

    /// Whether `mm2` of logic fits in one vault's budget.
    pub fn fits(&self, mm2: f64) -> bool {
        mm2 <= self.vault_budget_mm2
    }

    /// Fraction of the vault budget used by the PIM core (§3.3: ≤ 9.4%).
    pub fn pim_core_fraction(&self) -> f64 {
        self.fraction_of_vault(PIM_CORE_MM2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_core_fits_within_9_4_percent() {
        let m = AreaModel::default();
        // The paper rounds to one decimal (9.4%); allow that rounding.
        assert!(m.pim_core_fraction() <= 0.0945, "{}", m.pim_core_fraction());
        assert!(m.fits(PIM_CORE_MM2));
    }

    #[test]
    fn every_accelerator_fits_its_quoted_fraction() {
        let m = AreaModel::default();
        // §4–§7 quote: tiling ≤ 7.1%, sub-pel ≤ 6.0%, deblock ≤ 3.4%,
        // ME ≤ 35.4%, MC+deblock ≤ 9.4%.
        let cases = [
            (PimTargetKind::TextureTiling, 0.071),
            (PimTargetKind::SubPixelInterpolation, 0.060),
            (PimTargetKind::DeblockingFilter, 0.034),
            (PimTargetKind::MotionEstimation, 0.354),
            (PimTargetKind::McAndDeblock, 0.094),
        ];
        for (t, max_frac) in cases {
            let frac = m.fraction_of_vault(t.accelerator_mm2());
            assert!(frac <= max_frac + 0.0005, "{t}: {frac} > {max_frac}");
            assert!(m.fits(t.accelerator_mm2()));
        }
    }

    #[test]
    fn motion_estimation_is_the_largest_accelerator() {
        let me = PimTargetKind::MotionEstimation.accelerator_mm2();
        for t in PimTargetKind::ALL {
            assert!(t.accelerator_mm2() <= me);
        }
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for t in PimTargetKind::ALL {
            assert!(!t.label().is_empty());
            assert!(seen.insert(t.label()));
        }
    }
}
