//! The offload engine: run a kernel as CPU-only, PIM-core or PIM-accelerator.

use std::collections::BTreeMap;
use std::fmt;

use pim_cpusim::EngineTiming;
use pim_energy::EnergyBreakdown;
use pim_memsim::{Activity, Port, Ps};

use crate::context::{SimContext, TagStats};
use crate::kernel::Kernel;
use crate::platform::Platform;

/// Where a kernel executes (the x-axis of Figures 18–20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// On the SoC CPU against the LPDDR3 baseline (the paper's `CPU-Only`).
    CpuOnly,
    /// On the in-memory general-purpose core (`PIM-Core`).
    PimCore,
    /// On the fixed-function in-memory accelerator (`PIM-Acc`).
    PimAcc,
}

impl ExecutionMode {
    /// All modes in the paper's presentation order.
    pub const ALL: [ExecutionMode; 3] =
        [ExecutionMode::CpuOnly, ExecutionMode::PimCore, ExecutionMode::PimAcc];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::CpuOnly => "CPU-Only",
            ExecutionMode::PimCore => "PIM-Core",
            ExecutionMode::PimAcc => "PIM-Acc",
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything measured about one kernel execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Kernel name.
    pub kernel: &'static str,
    /// Mode it ran under.
    pub mode: ExecutionMode,
    /// End-to-end runtime, in ps.
    pub runtime_ps: Ps,
    /// Six-component energy breakdown.
    pub energy: EnergyBreakdown,
    /// Total memory activity.
    pub activity: Activity,
    /// Per-function-tag ledger.
    pub by_tag: BTreeMap<&'static str, TagStats>,
    /// Retired operations.
    pub instructions: u64,
    /// LLC (or PIM-L1) misses per kilo-instruction.
    pub mpki: f64,
}

impl RunReport {
    /// Runtime in milliseconds.
    pub fn runtime_ms(&self) -> f64 {
        self.runtime_ps as f64 / 1e9
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_pj() / 1e9
    }

    /// Energy of this run normalized to a baseline run.
    pub fn energy_vs(&self, baseline: &RunReport) -> f64 {
        self.energy.total_pj() / baseline.energy.total_pj()
    }

    /// Speedup of this run relative to a baseline run.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        baseline.runtime_ps as f64 / self.runtime_ps as f64
    }
}

/// Runs kernels under the three execution modes of the study.
///
/// `CpuOnly` executes on [`Platform::baseline`] (SoC + LPDDR3); the PIM
/// modes execute on [`Platform::pim`] (SoC + 3D-stacked memory) with the
/// §8.2 coherence hand-off charged at the offload boundaries.
#[derive(Debug, Clone, Default)]
pub struct OffloadEngine {
    baseline: Option<Platform>,
    pim: Option<Platform>,
    pim_cluster: Option<usize>,
}

impl OffloadEngine {
    /// Engine with the default Table 1 platforms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the CPU-only platform.
    pub fn with_baseline(mut self, p: Platform) -> Self {
        self.baseline = Some(p);
        self
    }

    /// Override the PIM platform.
    pub fn with_pim_platform(mut self, p: Platform) -> Self {
        self.pim = Some(p);
        self
    }

    /// Run `PimCore` mode as a data-parallel cluster of `n` cores, one per
    /// vault (Table 1). The default is the conservative single core.
    pub fn with_pim_cluster(mut self, n: usize) -> Self {
        self.pim_cluster = Some(n.max(1));
        self
    }

    /// The platform a mode runs on.
    pub fn platform_for(&self, mode: ExecutionMode) -> Platform {
        match mode {
            ExecutionMode::CpuOnly => self.baseline.unwrap_or_else(Platform::baseline),
            _ => self.pim.unwrap_or_else(Platform::pim),
        }
    }

    /// Build the context a mode runs in (exposed for drivers that need to
    /// interleave host work, like the TensorFlow pipeline of Figure 19).
    pub fn context_for(&self, mode: ExecutionMode) -> SimContext {
        let platform = self.platform_for(mode);
        match mode {
            ExecutionMode::CpuOnly => {
                SimContext::new(platform, EngineTiming::soc_cpu(), Port::Cpu)
            }
            ExecutionMode::PimCore => {
                let timing = match self.pim_cluster {
                    Some(n) if n > 1 => EngineTiming::pim_core_cluster(n),
                    _ => EngineTiming::pim_core(),
                };
                SimContext::new(platform, timing, Port::PimCore)
            }
            ExecutionMode::PimAcc => {
                SimContext::new(platform, EngineTiming::pim_accel(), Port::PimAccel)
            }
        }
    }

    /// Execute `kernel` under `mode` and collect the report.
    pub fn run(&self, kernel: &mut dyn Kernel, mode: ExecutionMode) -> RunReport {
        let mut ctx = self.context_for(mode);
        if mode != ExecutionMode::CpuOnly {
            ctx.offload_transition(kernel.working_set_bytes(), true);
        }
        kernel.run(&mut ctx);
        if mode != ExecutionMode::CpuOnly {
            ctx.offload_transition(kernel.working_set_bytes(), false);
        }
        RunReport {
            kernel: kernel.name(),
            mode,
            runtime_ps: ctx.now_ps(),
            energy: ctx.total_energy(),
            activity: ctx.total_activity(),
            by_tag: ctx.tag_stats().clone(),
            instructions: ctx.instructions(),
            mpki: ctx.mpki(),
        }
    }

    /// Run a kernel under every mode, in presentation order.
    pub fn run_all(&self, kernel: &mut dyn Kernel) -> Vec<RunReport> {
        ExecutionMode::ALL
            .iter()
            .map(|&m| self.run(kernel, m))
            .collect()
    }
}

/// Execute `f` as an offload region (§8.1's macro interface): the §8.2
/// coherence hand-off is charged when the region begins and ends, exactly
/// as [`OffloadEngine::run`] does around a whole kernel. Use this when a
/// kernel offloads fine-grained sections interleaved with host work.
///
/// ```
/// use pim_core::{offload_region, ExecutionMode, OffloadEngine, OpMix};
/// let engine = OffloadEngine::new();
/// let mut ctx = engine.context_for(ExecutionMode::PimCore);
/// offload_region(&mut ctx, 1 << 16, |ctx| ctx.ops(OpMix::simd(1024)));
/// assert_eq!(ctx.coherence_stats().messages, 4);
/// ```
pub fn offload_region<R>(
    ctx: &mut SimContext,
    region_bytes: u64,
    f: impl FnOnce(&mut SimContext) -> R,
) -> R {
    ctx.offload_transition(region_bytes, true);
    let r = f(ctx);
    ctx.offload_transition(region_bytes, false);
    r
}

/// Model two phases executing concurrently on different engines (CPU work
/// overlapped with PIM work), as in Figures 3b, 5b, 8b and the Figure 19
/// pipeline: total time is the longer of the two phases plus a hand-off.
pub fn overlap_ps(host_ps: Ps, pim_ps: Ps, handoff_ps: Ps) -> Ps {
    host_ps.max(pim_ps) + handoff_ps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_cpusim::OpMix;

    /// A deliberately memory-bound kernel: stream 4 MB, 1 op per 64 B.
    struct Stream;
    impl Kernel for Stream {
        fn name(&self) -> &'static str {
            "stream"
        }
        fn working_set_bytes(&self) -> u64 {
            4 << 20
        }
        fn run(&mut self, ctx: &mut SimContext) {
            let buf = ctx.alloc(4 << 20);
            ctx.scoped("stream", |ctx| {
                for i in 0..(4 << 20) / 4096u64 {
                    ctx.read(buf.addr(i * 4096), 4096);
                    ctx.ops(OpMix::simd(16));
                }
            });
        }
    }

    /// A compute-bound kernel: tiny working set, lots of multiplies.
    struct Crunch;
    impl Kernel for Crunch {
        fn name(&self) -> &'static str {
            "crunch"
        }
        fn run(&mut self, ctx: &mut SimContext) {
            let buf = ctx.alloc(4096);
            ctx.read(buf.addr(0), 4096);
            ctx.ops(OpMix::mul(2_000_000));
        }
    }

    #[test]
    fn memory_bound_kernel_wins_big_from_pim() {
        let eng = OffloadEngine::new();
        let cpu = eng.run(&mut Stream, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut Stream, ExecutionMode::PimCore);
        let acc = eng.run(&mut Stream, ExecutionMode::PimAcc);
        assert!(pim.energy_vs(&cpu) < 0.7, "pim/cpu = {}", pim.energy_vs(&cpu));
        assert!(acc.energy_vs(&cpu) <= pim.energy_vs(&cpu));
        assert!(pim.speedup_vs(&cpu) > 1.0);
        assert!(cpu.mpki > 10.0);
    }

    #[test]
    fn compute_bound_kernel_prefers_accelerator_over_pim_core() {
        let eng = OffloadEngine::new();
        let cpu = eng.run(&mut Crunch, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut Crunch, ExecutionMode::PimCore);
        let acc = eng.run(&mut Crunch, ExecutionMode::PimAcc);
        // The in-order PIM core is slower than the OoO CPU on pure compute.
        assert!(pim.speedup_vs(&cpu) < 1.0);
        // The accelerator's throughput restores the win.
        assert!(acc.speedup_vs(&cpu) > 1.0);
        assert!(acc.energy_mj() < pim.energy_mj());
    }

    #[test]
    fn run_all_covers_every_mode() {
        let reports = OffloadEngine::new().run_all(&mut Stream);
        let modes: Vec<_> = reports.iter().map(|r| r.mode).collect();
        assert_eq!(modes, ExecutionMode::ALL.to_vec());
        for r in &reports {
            assert!(r.runtime_ps > 0);
            assert!(r.energy.total_pj() > 0.0);
        }
    }

    #[test]
    fn pim_runs_pay_coherence_messages() {
        let eng = OffloadEngine::new();
        let mut ctx = eng.context_for(ExecutionMode::PimCore);
        ctx.offload_transition(1 << 20, true);
        ctx.offload_transition(1 << 20, false);
        assert_eq!(ctx.coherence_stats().messages, 4);
    }

    #[test]
    fn overlap_takes_the_longer_phase() {
        assert_eq!(overlap_ps(100, 300, 10), 310);
        assert_eq!(overlap_ps(300, 100, 10), 310);
    }

    #[test]
    fn cluster_speeds_up_pim_core_without_changing_energy() {
        let single = OffloadEngine::new();
        let cluster = OffloadEngine::new().with_pim_cluster(16);
        let a = single.run(&mut Stream, ExecutionMode::PimCore);
        let b = cluster.run(&mut Stream, ExecutionMode::PimCore);
        assert!(b.runtime_ps < a.runtime_ps, "{} vs {}", b.runtime_ps, a.runtime_ps);
        let ratio = b.energy.total_pj() / a.energy.total_pj();
        assert!((0.95..1.05).contains(&ratio), "energy ratio {ratio}");
        // CPU-only and PIM-Acc are unaffected by the cluster setting.
        let c = cluster.run(&mut Stream, ExecutionMode::CpuOnly);
        let d = single.run(&mut Stream, ExecutionMode::CpuOnly);
        assert_eq!(c.runtime_ps, d.runtime_ps);
    }

    #[test]
    fn offload_region_brackets_coherence() {
        let engine = OffloadEngine::new();
        let mut ctx = engine.context_for(ExecutionMode::PimAcc);
        let out = offload_region(&mut ctx, 4096, |ctx| {
            ctx.ops(OpMix::scalar(10));
            7
        });
        assert_eq!(out, 7);
        assert_eq!(ctx.coherence_stats().messages, 4);
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(ExecutionMode::CpuOnly.label(), "CPU-Only");
        assert_eq!(ExecutionMode::PimCore.to_string(), "PIM-Core");
        assert_eq!(ExecutionMode::PimAcc.label(), "PIM-Acc");
    }
}
