//! The offload engine: run a kernel as CPU-only, PIM-core or PIM-accelerator.

use std::collections::BTreeMap;
use std::fmt;

use pim_cpusim::EngineTiming;
use pim_energy::{EnergyBreakdown, COMPONENTS};
use pim_faults::{DmpimError, FaultConfig, FaultPlan, FaultStats, Watchdog};
use pim_memsim::{Activity, Port, Ps};
use pim_trace::{JsonValue, Tracer};

use crate::context::{CostBreakdown, SimContext, TagStats};
use crate::kernel::Kernel;
use crate::platform::Platform;

/// Ledger tag that carries the energy/time of abandoned (faulted) attempts
/// and retry backoff in a resilient run's [`RunReport::by_tag`].
pub const FAULT_RECOVERY_TAG: &str = "fault_recovery";

/// Where a kernel executes (the x-axis of Figures 18–20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// On the SoC CPU against the LPDDR3 baseline (the paper's `CPU-Only`).
    CpuOnly,
    /// On the in-memory general-purpose core (`PIM-Core`).
    PimCore,
    /// On the fixed-function in-memory accelerator (`PIM-Acc`).
    PimAcc,
}

impl ExecutionMode {
    /// All modes in the paper's presentation order.
    pub const ALL: [ExecutionMode; 3] =
        [ExecutionMode::CpuOnly, ExecutionMode::PimCore, ExecutionMode::PimAcc];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::CpuOnly => "CPU-Only",
            ExecutionMode::PimCore => "PIM-Core",
            ExecutionMode::PimAcc => "PIM-Acc",
        }
    }

    /// The degradation chain starting at this mode: each entry is tried in
    /// order when the previous one fails persistently
    /// (`PimAcc → PimCore → CpuOnly`).
    pub fn fallback_chain(self) -> &'static [ExecutionMode] {
        match self {
            ExecutionMode::CpuOnly => &[ExecutionMode::CpuOnly],
            ExecutionMode::PimCore => &[ExecutionMode::PimCore, ExecutionMode::CpuOnly],
            ExecutionMode::PimAcc => {
                &[ExecutionMode::PimAcc, ExecutionMode::PimCore, ExecutionMode::CpuOnly]
            }
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a resilient run deviated from its requested execution mode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Degradation {
    /// Retry attempts after transient faults (across all modes tried).
    pub retries: u32,
    /// Mode downgrades taken (`PimAcc → PimCore` counts one).
    pub fallbacks: u32,
    /// Simulated time spent backing off between retries, in ps.
    pub backoff_ps: Ps,
    /// Simulated time consumed by abandoned (faulted) attempts, in ps.
    pub abandoned_ps: Ps,
    /// Energy consumed by abandoned attempts, in pJ.
    pub abandoned_pj: f64,
    /// Everything the fault plan injected across all attempts.
    pub faults: FaultStats,
    /// Terminal error, set only when even the last mode in the fallback
    /// chain failed (the report then holds the failed attempt's partials).
    pub error: Option<DmpimError>,
}

impl Degradation {
    /// Whether the run deviated from the ideal path at all.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.fallbacks == 0 && self.error.is_none()
    }

    /// The record as a hand-rolled [`JsonValue`] (stable field order, no
    /// external serialization dependency).
    pub fn to_json_value(&self) -> JsonValue {
        let f = &self.faults;
        let faults = JsonValue::object()
            .set("bit_flips", f.bit_flips)
            .set("corrected", f.corrected)
            .set("uncorrectable", f.uncorrectable)
            .set("silent", f.silent)
            .set("unavail_hits", f.unavail_hits)
            .set("vault_hits", f.vault_hits)
            .set("throttled_ps", f.throttled_ps);
        let o = JsonValue::object()
            .set("retries", u64::from(self.retries))
            .set("fallbacks", u64::from(self.fallbacks))
            .set("backoff_ps", self.backoff_ps)
            .set("abandoned_ps", self.abandoned_ps)
            .set("abandoned_pj", self.abandoned_pj)
            .set("faults", faults);
        match &self.error {
            Some(e) => o.set("error", e.to_string()),
            None => o.set("error", JsonValue::Null),
        }
    }

    /// Compact JSON rendering of [`Self::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

/// Everything measured about one kernel execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Kernel name.
    pub kernel: &'static str,
    /// Mode the caller requested.
    pub mode: ExecutionMode,
    /// Mode the kernel actually completed under (differs from `mode` after
    /// a fallback).
    pub executed: ExecutionMode,
    /// End-to-end runtime, in ps (includes abandoned attempts and backoff
    /// for resilient runs).
    pub runtime_ps: Ps,
    /// Six-component energy breakdown.
    pub energy: EnergyBreakdown,
    /// Total memory activity.
    pub activity: Activity,
    /// Per-function-tag ledger.
    pub by_tag: BTreeMap<&'static str, TagStats>,
    /// Retired operations.
    pub instructions: u64,
    /// LLC (or PIM-L1) misses per kilo-instruction.
    pub mpki: f64,
    /// Simulated-time attribution across the six model layers (includes
    /// abandoned attempts on resilient runs; backoff idles unattributed).
    pub cost: CostBreakdown,
    /// Resilience record; `None` for runs without faults or watchdog.
    pub degradation: Option<Degradation>,
}

impl RunReport {
    /// Runtime in milliseconds.
    pub fn runtime_ms(&self) -> f64 {
        self.runtime_ps as f64 / 1e9
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_pj() / 1e9
    }

    /// Energy of this run normalized to a baseline run.
    pub fn energy_vs(&self, baseline: &RunReport) -> f64 {
        self.energy.total_pj() / baseline.energy.total_pj()
    }

    /// Speedup of this run relative to a baseline run.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        baseline.runtime_ps as f64 / self.runtime_ps as f64
    }

    /// Whether the run fell back from its requested mode.
    pub fn degraded(&self) -> bool {
        self.executed != self.mode
    }

    /// The report as a hand-rolled [`JsonValue`] (stable field order, no
    /// external serialization dependency).
    pub fn to_json_value(&self) -> JsonValue {
        let mut energy = JsonValue::object();
        for c in COMPONENTS {
            energy = energy.set(c.label(), self.energy.get(c));
        }
        energy = energy
            .set("total_pj", self.energy.total_pj())
            .set("data_movement_fraction", self.energy.data_movement_fraction());
        let a = &self.activity;
        let activity = JsonValue::object()
            .set("l1_accesses", a.l1_accesses)
            .set("llc_accesses", a.llc_accesses)
            .set("scratch_accesses", a.scratch_accesses)
            .set("memctrl_requests", a.memctrl_requests)
            .set("dram_read_bytes", a.dram_read_bytes)
            .set("dram_write_bytes", a.dram_write_bytes)
            .set("internal_bytes", a.internal_bytes)
            .set("offchip_bytes", a.offchip_bytes)
            .set("row_hits", a.row_hits)
            .set("row_misses", a.row_misses);
        let mut by_tag = JsonValue::object();
        for (tag, t) in &self.by_tag {
            by_tag = by_tag.set(
                tag,
                JsonValue::object()
                    .set("time_ps", t.time_ps)
                    .set("ops", t.ops.total())
                    .set("memory_lines", t.memory_lines)
                    .set("energy_pj", t.energy.total_pj())
                    .set("data_movement_fraction", t.data_movement_fraction()),
            );
        }
        let degradation = match &self.degradation {
            Some(d) => d.to_json_value(),
            None => JsonValue::Null,
        };
        let mut cost = JsonValue::object();
        for (label, ps) in CostBreakdown::LABELS.iter().zip(self.cost.as_array()) {
            cost = cost.set(label, ps);
        }
        cost = cost.set("total_ps", self.cost.total_ps());
        JsonValue::object()
            .set("kernel", self.kernel)
            .set("mode", self.mode.label())
            .set("executed", self.executed.label())
            .set("runtime_ps", self.runtime_ps)
            .set("runtime_ms", self.runtime_ms())
            .set("instructions", self.instructions)
            .set("mpki", self.mpki)
            .set("energy", energy)
            .set("activity", activity)
            .set("cost_ps", cost)
            .set("by_tag", by_tag)
            .set("degradation", degradation)
    }

    /// Compact JSON rendering of [`Self::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

/// Retry/fallback policy of a resilient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Retries (after the first attempt) per mode for transient faults.
    pub max_retries: u32,
    /// First backoff, in simulated ps; doubles (`backoff_mult`) per retry.
    pub backoff_ps: Ps,
    /// Exponential backoff multiplier.
    pub backoff_mult: u32,
    /// Whether persistent failure may fall back down the mode chain; when
    /// `false` the requested mode is the only one tried.
    pub allow_fallback: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self { max_retries: 3, backoff_ps: 10_000_000, backoff_mult: 2, allow_fallback: true }
    }
}

impl ResiliencePolicy {
    /// Backoff before retry number `retry` (1-based), in ps.
    pub fn backoff_for(&self, retry: u32) -> Ps {
        let mult = (self.backoff_mult.max(1) as u64).saturating_pow(retry.saturating_sub(1));
        self.backoff_ps.saturating_mul(mult)
    }
}

/// Runs kernels under the three execution modes of the study.
///
/// `CpuOnly` executes on [`Platform::baseline`] (SoC + LPDDR3); the PIM
/// modes execute on [`Platform::pim`] (SoC + 3D-stacked memory) with the
/// §8.2 coherence hand-off charged at the offload boundaries.
#[derive(Debug, Clone, Default)]
pub struct OffloadEngine {
    baseline: Option<Platform>,
    pim: Option<Platform>,
    pim_cluster: Option<usize>,
    faults: Option<(FaultConfig, u64)>,
    watchdog: Watchdog,
    policy: ResiliencePolicy,
    tracer: Tracer,
}

impl OffloadEngine {
    /// Engine with the default Table 1 platforms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the CPU-only platform.
    pub fn with_baseline(mut self, p: Platform) -> Self {
        self.baseline = Some(p);
        self
    }

    /// Override the PIM platform.
    pub fn with_pim_platform(mut self, p: Platform) -> Self {
        self.pim = Some(p);
        self
    }

    /// Run `PimCore` mode as a data-parallel cluster of `n` cores, one per
    /// vault (Table 1). The default is the conservative single core.
    pub fn with_pim_cluster(mut self, n: usize) -> Self {
        self.pim_cluster = Some(n.max(1));
        self
    }

    /// Inject faults from `config` (seeded by `seed`) into every PIM-mode
    /// run. [`FaultConfig::none`] (or any zero config) leaves every number
    /// bit-identical to an engine without faults.
    pub fn with_faults(mut self, config: FaultConfig, seed: u64) -> Self {
        self.faults = Some((config, seed));
        self
    }

    /// Bound every run's progress with `watchdog`.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Override the retry/fallback policy for resilient runs.
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a tracer: every attempt becomes a span on its engine's track,
    /// retries/backoff/fallbacks land on a `recovery` track, and each run's
    /// context forwards kernel-phase, memory and fault events. The default
    /// (disabled) tracer keeps the exact zero-overhead legacy path.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Whether runs take the resilient path (faults configured or watchdog
    /// armed) instead of the exact legacy path.
    fn is_resilient(&self) -> bool {
        self.faults.is_some_and(|(c, _)| !c.is_zero()) || self.watchdog.is_armed()
    }

    /// The platform a mode runs on.
    pub fn platform_for(&self, mode: ExecutionMode) -> Platform {
        match mode {
            ExecutionMode::CpuOnly => self.baseline.unwrap_or_else(Platform::baseline),
            _ => self.pim.unwrap_or_else(Platform::pim),
        }
    }

    /// Build the context a mode runs in (exposed for drivers that need to
    /// interleave host work, like the TensorFlow pipeline of Figure 19).
    /// The engine's watchdog is attached; its fault plan is not (attempt
    /// management lives in [`Self::run`]).
    pub fn context_for(&self, mode: ExecutionMode) -> SimContext {
        let platform = self.platform_for(mode);
        let ctx = match mode {
            ExecutionMode::CpuOnly => {
                SimContext::new(platform, EngineTiming::soc_cpu(), Port::Cpu)
            }
            ExecutionMode::PimCore => {
                let timing = match self.pim_cluster {
                    Some(n) if n > 1 => EngineTiming::pim_core_cluster(n),
                    _ => EngineTiming::pim_core(),
                };
                SimContext::new(platform, timing, Port::PimCore)
            }
            ExecutionMode::PimAcc => {
                SimContext::new(platform, EngineTiming::pim_accel(), Port::PimAccel)
            }
        };
        ctx.with_watchdog(self.watchdog)
    }

    /// One attempt: bracket the kernel with offload transitions and run it.
    /// `base_ps` places the attempt on the world (trace) timeline.
    fn attempt(
        &self,
        kernel: &mut dyn Kernel,
        mode: ExecutionMode,
        plan: Option<FaultPlan>,
        base_ps: Ps,
        attempt_no: u64,
    ) -> SimContext {
        let mut ctx = self.context_for(mode).with_tracer(&self.tracer);
        ctx.set_time_base(base_ps);
        if let Some(plan) = plan {
            ctx = ctx.with_fault_plan(plan);
        }
        if mode != ExecutionMode::CpuOnly {
            ctx.offload_transition(kernel.working_set_bytes(), true);
        }
        kernel.run(&mut ctx);
        if mode != ExecutionMode::CpuOnly {
            ctx.offload_transition(kernel.working_set_bytes(), false);
        }
        if self.tracer.enabled() {
            let track = self.tracer.track(ctx.timing().label());
            self.tracer.complete_args(
                track,
                kernel.name(),
                base_ps,
                ctx.now_ps(),
                vec![("mode", mode.label().into()), ("attempt", attempt_no.into())],
            );
        }
        ctx
    }

    fn report_from(
        &self,
        kernel_name: &'static str,
        requested: ExecutionMode,
        executed: ExecutionMode,
        ctx: &SimContext,
    ) -> RunReport {
        RunReport {
            kernel: kernel_name,
            mode: requested,
            executed,
            runtime_ps: ctx.now_ps(),
            energy: ctx.total_energy(),
            activity: ctx.total_activity(),
            by_tag: ctx.tag_stats().clone(),
            instructions: ctx.instructions(),
            mpki: ctx.mpki(),
            cost: ctx.cost_breakdown(),
            degradation: None,
        }
    }

    /// Execute `kernel` under `mode` and collect the report.
    ///
    /// Without faults or a watchdog configured this is the exact legacy
    /// simulation path. With them, it is the resilient path: transient
    /// faults are retried with bounded exponential backoff (charged in
    /// simulated time and energy), persistent failure falls down the
    /// `PimAcc → PimCore → CpuOnly` chain, and the deviation is recorded
    /// in [`RunReport::degradation`]. This method never panics on injected
    /// faults; if even the last mode in the chain fails (e.g. watchdog),
    /// the report carries the terminal error in its degradation record
    /// (use [`Self::try_run`] to surface it as a `Result`).
    pub fn run(&self, kernel: &mut dyn Kernel, mode: ExecutionMode) -> RunReport {
        if !self.is_resilient() {
            let ctx = self.attempt(kernel, mode, None, 0, 1);
            let mut report = self.report_from(kernel.name(), mode, mode, &ctx);
            // A poisoned context (invalid platform config, unsupported
            // port) must not read as a clean run: carry the error in a
            // degradation record. Clean runs keep `None`, preserving
            // bit-identity with the historical legacy path.
            if let Some(e) = ctx.error() {
                report.degradation =
                    Some(Degradation { error: Some(e.clone()), ..Degradation::default() });
            }
            return report;
        }
        self.run_resilient(kernel, mode)
    }

    /// Like [`Self::run`], but a terminal failure (every mode in the chain
    /// exhausted) surfaces as an `Err` instead of a degraded report.
    pub fn try_run(&self, kernel: &mut dyn Kernel, mode: ExecutionMode) -> Result<RunReport, DmpimError> {
        let report = self.run(kernel, mode);
        match report.degradation.as_ref().and_then(|d| d.error.clone()) {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    fn run_resilient(&self, kernel: &mut dyn Kernel, mode: ExecutionMode) -> RunReport {
        let mut degradation = Degradation::default();
        let mut plan = match self.faults {
            Some((config, seed)) if !config.is_zero() => match FaultPlan::new(config, seed) {
                Ok(p) => Some(p),
                Err(e) => {
                    // Nonsense fault config: report it without running.
                    let ctx = self.context_for(mode);
                    let mut report = self.report_from(kernel.name(), mode, mode, &ctx);
                    degradation.error = Some(e);
                    report.degradation = Some(degradation);
                    return report;
                }
            },
            _ => None,
        };

        // World clock across attempts: abandoned attempts and backoff
        // consume simulated time, which is how a retry outlives an
        // unavailability window.
        let mut world_ps: Ps = 0;
        let mut abandoned_energy = EnergyBreakdown::new();
        let mut abandoned_cost = CostBreakdown::default();
        let mut attempt_no: u64 = 0;
        let mut last_error: Option<DmpimError> = None;

        let chain: &[ExecutionMode] = if self.policy.allow_fallback {
            mode.fallback_chain()
        } else {
            std::slice::from_ref(match mode {
                ExecutionMode::CpuOnly => &ExecutionMode::CpuOnly,
                ExecutionMode::PimCore => &ExecutionMode::PimCore,
                ExecutionMode::PimAcc => &ExecutionMode::PimAcc,
            })
        };

        let recovery = if self.tracer.enabled() {
            Some(self.tracer.track("recovery"))
        } else {
            None
        };
        let mut final_ctx: Option<(ExecutionMode, SimContext)> = None;
        'modes: for (i, &m) in chain.iter().enumerate() {
            if i > 0 {
                degradation.fallbacks += 1;
                if let Some(track) = recovery {
                    self.tracer.instant_args(
                        track,
                        "fallback",
                        world_ps,
                        vec![("to", m.label().into())],
                    );
                    self.tracer.count("offload.fallbacks", 1);
                }
            }
            let mut retries_here = 0u32;
            loop {
                attempt_no += 1;
                // Faults apply to the PIM logic layer; CpuOnly is the safe
                // harbor (its DRAM is the baseline part, not the stack).
                let attempt_plan = if m == ExecutionMode::CpuOnly {
                    None
                } else {
                    plan.take().map(|mut p| {
                        p.start_attempt(attempt_no);
                        p.set_world_offset(world_ps);
                        p
                    })
                };
                let mut ctx = self.attempt(kernel, m, attempt_plan, world_ps, attempt_no);
                if let Some(p) = ctx.take_fault_plan() {
                    plan = Some(p);
                }
                match ctx.error().cloned() {
                    None => {
                        final_ctx = Some((m, ctx));
                        last_error = None;
                        break 'modes;
                    }
                    Some(e) => {
                        degradation.abandoned_ps += ctx.now_ps();
                        abandoned_energy += ctx.total_energy();
                        abandoned_cost += ctx.cost_breakdown();
                        world_ps += ctx.now_ps();
                        let transient = e.is_transient();
                        last_error = Some(e);
                        final_ctx = Some((m, ctx));
                        if transient && retries_here < self.policy.max_retries {
                            retries_here += 1;
                            degradation.retries += 1;
                            let backoff = self.policy.backoff_for(retries_here);
                            if let Some(track) = recovery {
                                self.tracer.complete_args(
                                    track,
                                    "backoff",
                                    world_ps,
                                    backoff,
                                    vec![
                                        ("retry", u64::from(retries_here).into()),
                                        ("mode", m.label().into()),
                                    ],
                                );
                                self.tracer.count("offload.retries", 1);
                            }
                            degradation.backoff_ps += backoff;
                            world_ps += backoff;
                            continue;
                        }
                        continue 'modes;
                    }
                }
            }
        }

        if let Some(p) = plan.as_ref() {
            degradation.faults = *p.stats();
        }
        degradation.error = last_error;
        // Unwrap is safe in spirit (the chain is never empty) but keep the
        // no-panic guarantee: synthesize an empty context if it ever is.
        let (executed, ctx) = match final_ctx {
            Some(pair) => pair,
            None => (mode, self.context_for(mode)),
        };
        let mut report = self.report_from(kernel.name(), mode, executed, &ctx);
        // Fold the failed attempts and backoff into the end-to-end numbers:
        // the device really spent that time and energy before succeeding.
        let overhead_ps = degradation.abandoned_ps + degradation.backoff_ps;
        degradation.abandoned_pj = abandoned_energy.total_pj();
        if overhead_ps > 0 || degradation.abandoned_pj > 0.0 {
            report.runtime_ps += overhead_ps;
            report.energy += abandoned_energy;
            report.cost += abandoned_cost;
            let recovery = report.by_tag.entry(FAULT_RECOVERY_TAG).or_default();
            recovery.time_ps += overhead_ps;
            recovery.energy += abandoned_energy;
        }
        report.degradation = Some(degradation);
        report
    }

    /// Run a kernel under every mode, in presentation order.
    pub fn run_all(&self, kernel: &mut dyn Kernel) -> Vec<RunReport> {
        ExecutionMode::ALL
            .iter()
            .map(|&m| self.run(kernel, m))
            .collect()
    }
}

/// Execute `f` as an offload region (§8.1's macro interface): the §8.2
/// coherence hand-off is charged when the region begins and ends, exactly
/// as [`OffloadEngine::run`] does around a whole kernel. Use this when a
/// kernel offloads fine-grained sections interleaved with host work.
///
/// ```
/// use pim_core::{offload_region, ExecutionMode, OffloadEngine, OpMix};
/// let engine = OffloadEngine::new();
/// let mut ctx = engine.context_for(ExecutionMode::PimCore);
/// offload_region(&mut ctx, 1 << 16, |ctx| ctx.ops(OpMix::simd(1024)));
/// assert_eq!(ctx.coherence_stats().messages, 4);
/// ```
pub fn offload_region<R>(
    ctx: &mut SimContext,
    region_bytes: u64,
    f: impl FnOnce(&mut SimContext) -> R,
) -> R {
    ctx.offload_transition(region_bytes, true);
    let r = f(ctx);
    ctx.offload_transition(region_bytes, false);
    r
}

/// Model two phases executing concurrently on different engines (CPU work
/// overlapped with PIM work), as in Figures 3b, 5b, 8b and the Figure 19
/// pipeline: total time is the longer of the two phases plus a hand-off.
pub fn overlap_ps(host_ps: Ps, pim_ps: Ps, handoff_ps: Ps) -> Ps {
    host_ps.max(pim_ps) + handoff_ps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_cpusim::OpMix;

    /// A deliberately memory-bound kernel: stream 4 MB, 1 op per 64 B.
    struct Stream;
    impl Kernel for Stream {
        fn name(&self) -> &'static str {
            "stream"
        }
        fn working_set_bytes(&self) -> u64 {
            4 << 20
        }
        fn run(&mut self, ctx: &mut SimContext) {
            let buf = ctx.alloc(4 << 20);
            ctx.scoped("stream", |ctx| {
                for i in 0..(4 << 20) / 4096u64 {
                    ctx.read(buf.addr(i * 4096), 4096);
                    ctx.ops(OpMix::simd(16));
                }
            });
        }
    }

    /// A compute-bound kernel: tiny working set, lots of multiplies.
    struct Crunch;
    impl Kernel for Crunch {
        fn name(&self) -> &'static str {
            "crunch"
        }
        fn run(&mut self, ctx: &mut SimContext) {
            let buf = ctx.alloc(4096);
            ctx.read(buf.addr(0), 4096);
            ctx.ops(OpMix::mul(2_000_000));
        }
    }

    #[test]
    fn memory_bound_kernel_wins_big_from_pim() {
        let eng = OffloadEngine::new();
        let cpu = eng.run(&mut Stream, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut Stream, ExecutionMode::PimCore);
        let acc = eng.run(&mut Stream, ExecutionMode::PimAcc);
        assert!(pim.energy_vs(&cpu) < 0.7, "pim/cpu = {}", pim.energy_vs(&cpu));
        assert!(acc.energy_vs(&cpu) <= pim.energy_vs(&cpu));
        assert!(pim.speedup_vs(&cpu) > 1.0);
        assert!(cpu.mpki > 10.0);
    }

    #[test]
    fn compute_bound_kernel_prefers_accelerator_over_pim_core() {
        let eng = OffloadEngine::new();
        let cpu = eng.run(&mut Crunch, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut Crunch, ExecutionMode::PimCore);
        let acc = eng.run(&mut Crunch, ExecutionMode::PimAcc);
        // The in-order PIM core is slower than the OoO CPU on pure compute.
        assert!(pim.speedup_vs(&cpu) < 1.0);
        // The accelerator's throughput restores the win.
        assert!(acc.speedup_vs(&cpu) > 1.0);
        assert!(acc.energy_mj() < pim.energy_mj());
    }

    #[test]
    fn run_all_covers_every_mode() {
        let reports = OffloadEngine::new().run_all(&mut Stream);
        let modes: Vec<_> = reports.iter().map(|r| r.mode).collect();
        assert_eq!(modes, ExecutionMode::ALL.to_vec());
        for r in &reports {
            assert!(r.runtime_ps > 0);
            assert!(r.energy.total_pj() > 0.0);
        }
    }

    #[test]
    fn pim_runs_pay_coherence_messages() {
        let eng = OffloadEngine::new();
        let mut ctx = eng.context_for(ExecutionMode::PimCore);
        ctx.offload_transition(1 << 20, true);
        ctx.offload_transition(1 << 20, false);
        assert_eq!(ctx.coherence_stats().messages, 4);
    }

    #[test]
    fn overlap_takes_the_longer_phase() {
        assert_eq!(overlap_ps(100, 300, 10), 310);
        assert_eq!(overlap_ps(300, 100, 10), 310);
    }

    #[test]
    fn cluster_speeds_up_pim_core_without_changing_energy() {
        let single = OffloadEngine::new();
        let cluster = OffloadEngine::new().with_pim_cluster(16);
        let a = single.run(&mut Stream, ExecutionMode::PimCore);
        let b = cluster.run(&mut Stream, ExecutionMode::PimCore);
        assert!(b.runtime_ps < a.runtime_ps, "{} vs {}", b.runtime_ps, a.runtime_ps);
        let ratio = b.energy.total_pj() / a.energy.total_pj();
        assert!((0.95..1.05).contains(&ratio), "energy ratio {ratio}");
        // CPU-only and PIM-Acc are unaffected by the cluster setting.
        let c = cluster.run(&mut Stream, ExecutionMode::CpuOnly);
        let d = single.run(&mut Stream, ExecutionMode::CpuOnly);
        assert_eq!(c.runtime_ps, d.runtime_ps);
    }

    #[test]
    fn offload_region_brackets_coherence() {
        let engine = OffloadEngine::new();
        let mut ctx = engine.context_for(ExecutionMode::PimAcc);
        let out = offload_region(&mut ctx, 4096, |ctx| {
            ctx.ops(OpMix::scalar(10));
            7
        });
        assert_eq!(out, 7);
        assert_eq!(ctx.coherence_stats().messages, 4);
    }

    #[test]
    fn mode_labels_match_paper() {
        assert_eq!(ExecutionMode::CpuOnly.label(), "CPU-Only");
        assert_eq!(ExecutionMode::PimCore.to_string(), "PIM-Core");
        assert_eq!(ExecutionMode::PimAcc.label(), "PIM-Acc");
    }

    fn report_key(r: &RunReport) -> (Ps, u64, u64) {
        (r.runtime_ps, r.energy.total_pj().to_bits(), r.instructions)
    }

    #[test]
    fn zero_fault_config_is_bit_identical_to_no_faults() {
        let plain = OffloadEngine::new();
        let zero = OffloadEngine::new().with_faults(FaultConfig::none(), 1234);
        for mode in ExecutionMode::ALL {
            let a = plain.run(&mut Stream, mode);
            let b = zero.run(&mut Stream, mode);
            assert_eq!(report_key(&a), report_key(&b), "mode {mode}");
            assert!(b.degradation.is_none(), "zero config must take the exact path");
        }
    }

    #[test]
    fn resilient_run_is_deterministic_per_seed() {
        let cfg = FaultConfig::with_rate(0.7);
        let eng = OffloadEngine::new().with_faults(cfg, 42);
        let a = eng.run(&mut Stream, ExecutionMode::PimAcc);
        let b = eng.run(&mut Stream, ExecutionMode::PimAcc);
        assert_eq!(report_key(&a), report_key(&b));
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn hostile_faults_degrade_to_cpu_instead_of_failing() {
        // vault_fail_prob 1.0: every vault fails at some point inside the
        // horizon; PIM attempts hit an unrecoverable fault quickly, and the
        // run must land on CpuOnly with the degradation recorded.
        let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
        let eng = OffloadEngine::new().with_faults(cfg, 9);
        let r = eng.run(&mut Stream, ExecutionMode::PimAcc);
        assert_eq!(r.executed, ExecutionMode::CpuOnly);
        assert!(r.degraded());
        let d = r.degradation.expect("resilient run records degradation");
        assert!(d.error.is_none(), "CpuOnly completes: {:?}", d.error);
        assert_eq!(d.fallbacks, 2, "PimAcc -> PimCore -> CpuOnly");
        assert!(d.faults.vault_hits > 0);
        assert!(d.abandoned_ps > 0 && d.abandoned_pj > 0.0);
        assert!(r.by_tag.contains_key(FAULT_RECOVERY_TAG));
    }

    #[test]
    fn transient_faults_are_retried_with_backoff() {
        // Moderate bit-flip rate: uncorrectable hits are transient, so the
        // engine should retry (salted draws let a retry pass) rather than
        // immediately abandoning the mode.
        let cfg = FaultConfig { bit_flips_per_gb: 8.0, ..FaultConfig::none() };
        let eng = OffloadEngine::new().with_faults(cfg, 7);
        let r = eng.run(&mut Stream, ExecutionMode::PimCore);
        let d = r.degradation.expect("resilient path");
        assert!(d.error.is_none());
        if d.retries > 0 {
            assert!(d.backoff_ps > 0);
            assert!(d.abandoned_ps > 0);
        }
        // Whatever happened, the run completed and charged its overheads.
        assert!(r.runtime_ps > 0);
    }

    #[test]
    fn fallback_can_be_disabled() {
        let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
        let policy = ResiliencePolicy { allow_fallback: false, ..ResiliencePolicy::default() };
        let eng = OffloadEngine::new().with_faults(cfg, 9).with_resilience(policy);
        let err = eng.try_run(&mut Stream, ExecutionMode::PimAcc).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(err.fault_kind(), Some(pim_faults::FaultKind::VaultFailure));
    }

    #[test]
    fn watchdog_bounds_runaway_kernels() {
        // 10 host events is far less than Stream needs: every mode fails,
        // and the terminal error must be the watchdog timeout.
        let eng = OffloadEngine::new().with_watchdog(Watchdog::new(u64::MAX, 10));
        let err = eng.try_run(&mut Stream, ExecutionMode::PimCore).unwrap_err();
        assert!(matches!(err, DmpimError::WatchdogTimeout { what: "host events", .. }));
        // The infallible path still returns a report carrying the error.
        let r = eng.run(&mut Stream, ExecutionMode::PimCore);
        assert!(r.degradation.and_then(|d| d.error).is_some());
    }

    #[test]
    fn generous_watchdog_changes_nothing_but_takes_resilient_path() {
        let eng = OffloadEngine::new().with_watchdog(Watchdog::new(u64::MAX, u64::MAX));
        let plain = OffloadEngine::new();
        let a = eng.run(&mut Stream, ExecutionMode::PimCore);
        let b = plain.run(&mut Stream, ExecutionMode::PimCore);
        assert_eq!(report_key(&a), report_key(&b));
        let d = a.degradation.expect("armed watchdog takes resilient path");
        assert!(d.is_clean());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = ResiliencePolicy::default();
        assert_eq!(p.backoff_for(1), p.backoff_ps);
        assert_eq!(p.backoff_for(2), 2 * p.backoff_ps);
        assert_eq!(p.backoff_for(3), 4 * p.backoff_ps);
    }

    #[test]
    fn traced_run_emits_attempt_spans_without_changing_numbers() {
        let plain = OffloadEngine::new();
        let tracer = Tracer::new();
        let traced = OffloadEngine::new().with_tracer(&tracer);
        let a = plain.run(&mut Stream, ExecutionMode::PimCore);
        let b = traced.run(&mut Stream, ExecutionMode::PimCore);
        assert_eq!(report_key(&a), report_key(&b));
        let names: Vec<String> = tracer.events().iter().map(|e| e.name.to_string()).collect();
        assert!(names.iter().any(|n| n == "stream"), "{names:?}");
        assert!(tracer.tracks().iter().any(|t| t == "pim-core"));
        assert!(tracer.tracks().iter().any(|t| t == "kernel-phases"));
    }

    #[test]
    fn traced_resilient_run_places_attempts_on_world_timeline() {
        let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
        let tracer = Tracer::new();
        let eng = OffloadEngine::new().with_faults(cfg, 9).with_tracer(&tracer);
        let r = eng.run(&mut Stream, ExecutionMode::PimAcc);
        assert_eq!(r.executed, ExecutionMode::CpuOnly);
        assert!(tracer.tracks().iter().any(|t| t == "recovery"));
        assert!(tracer.tracks().iter().any(|t| t == "faults"));
        assert!(tracer.metrics().counters["offload.fallbacks"] >= 2);
        // The successful CPU attempt must start after the abandoned PIM
        // attempts on the world timeline.
        let cpu_attempt = tracer
            .events()
            .into_iter()
            .find(|e| e.name == "stream" && e.ts_ps > 0)
            .expect("fallback attempt span");
        assert!(cpu_attempt.ts_ps > 0);
    }

    #[test]
    fn reports_carry_a_consistent_cost_breakdown() {
        let eng = OffloadEngine::new();
        for mode in ExecutionMode::ALL {
            let r = eng.run(&mut Stream, mode);
            let shares = r.cost.shares();
            assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{mode}: {shares:?}");
            // Attributed time stays within the end-to-end runtime.
            assert!(r.cost.total_ps() <= r.runtime_ps as f64 * (1.0 + 1e-9), "{mode}");
            if mode == ExecutionMode::CpuOnly {
                assert_eq!(r.cost.pim_link_ps + r.cost.coherence_ps, 0.0);
                assert!(r.cost.dram_queue_ps > 0.0);
            } else {
                assert!(r.cost.coherence_ps > 0.0, "{mode} pays offload transitions");
                assert!(r.cost.pim_link_ps > 0.0, "{mode} uses the vault link");
            }
        }
        // Degraded runs fold the abandoned attempts' cost in.
        let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
        let r = OffloadEngine::new().with_faults(cfg, 9).run(&mut Stream, ExecutionMode::PimAcc);
        assert_eq!(r.executed, ExecutionMode::CpuOnly);
        assert!(r.cost.total_ps() > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"cost_ps\""));
        assert!(json.contains("\"dram-service\""));
    }

    #[test]
    fn reports_render_to_stable_json() {
        let eng = OffloadEngine::new();
        let r = eng.run(&mut Crunch, ExecutionMode::PimAcc);
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        assert!(json.contains("\"kernel\":\"crunch\""));
        assert!(json.contains("\"mode\":\"PIM-Acc\""));
        assert!(json.contains("\"degradation\":null"));
        assert!(json.contains("\"total_pj\""));
        // Degraded runs embed the degradation record.
        let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
        let r = OffloadEngine::new().with_faults(cfg, 9).run(&mut Stream, ExecutionMode::PimAcc);
        let json = r.to_json();
        assert!(json.contains("\"fallbacks\":2"));
        assert!(json.contains("\"vault_hits\""));
        let d = r.degradation.unwrap();
        assert!(d.to_json().contains("\"error\":null"));
    }

    #[test]
    fn invalid_platform_surfaces_as_config_error() {
        let mut bad = Platform::baseline();
        bad.mem.llc.associativity = 0;
        let eng = OffloadEngine::new().with_baseline(bad);
        let err = eng.try_run(&mut Crunch, ExecutionMode::CpuOnly).unwrap_err();
        assert!(matches!(err, DmpimError::InvalidConfig { .. }));
        assert_eq!(err.label(), "invalid-config");
        // The infallible path reports it without simulating anything.
        let r = eng.run(&mut Crunch, ExecutionMode::CpuOnly);
        assert_eq!(r.runtime_ps, 0);
        assert!(r.degradation.and_then(|d| d.error).is_some());
    }

    #[test]
    fn fallback_chains_end_in_cpu_only() {
        for mode in ExecutionMode::ALL {
            let chain = mode.fallback_chain();
            assert_eq!(chain.first(), Some(&mode));
            assert_eq!(chain.last(), Some(&ExecutionMode::CpuOnly));
        }
    }
}
