//! The simulation context: one engine executing against one memory system.

use std::collections::BTreeMap;

use pim_cpusim::{EngineTiming, OpMix};
use pim_energy::{Component, EnergyBreakdown, EnergyParams, Engine, OpClass};
use pim_faults::{DmpimError, FaultKind, FaultPlan, FaultStats, Watchdog};
use pim_memsim::{
    line_count, AccessKind, AccessOutcome, Activity, CoherenceModel, MemorySystem, Port, Ps,
    CPU_LINE_PS, LINE_BYTES, PIM_LINE_PS, PIM_L1_HIT_PS, SCRATCH_HIT_PS,
};
use pim_trace::{TrackId, Tracer};

use crate::buffer::Buffer;
use crate::platform::Platform;

/// Default attribution tag for work outside any [`SimContext::scoped`] call.
pub const OTHER_TAG: &str = "other";

/// Simulated-time cost attribution across the six model layers the
/// `--explain` mode reports on: compute, private caches, coherence,
/// DRAM queueing, DRAM service, and the PIM vault/TSV link.
///
/// Accumulated as f64 picoseconds because exposed-stall scaling and
/// fault-plan throttling stretch integer latencies by real factors; each
/// context accumulates in deterministic program order, so the totals are
/// bit-identical across serial and parallel sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Engine execution time (retired op mixes).
    pub compute_ps: f64,
    /// Private-cache / SRAM time (hit lead-ins + line occupancy).
    pub cache_ps: f64,
    /// Offload-transition coherence cost (flushes, hand-off messages).
    pub coherence_ps: f64,
    /// Memory-controller and off-chip channel queueing/transfer time.
    pub dram_queue_ps: f64,
    /// DRAM array service time (activate + column access).
    pub dram_service_ps: f64,
    /// Stacked vault/TSV link time on the PIM internal path.
    pub pim_link_ps: f64,
}

impl CostBreakdown {
    /// Component labels, in [`CostBreakdown::as_array`] order.
    pub const LABELS: [&'static str; 6] =
        ["compute", "cache", "coherence", "dram-queue", "dram-service", "pim-link"];

    /// The six components as an array in [`CostBreakdown::LABELS`] order.
    pub fn as_array(&self) -> [f64; 6] {
        [
            self.compute_ps,
            self.cache_ps,
            self.coherence_ps,
            self.dram_queue_ps,
            self.dram_service_ps,
            self.pim_link_ps,
        ]
    }

    /// Total attributed simulated time, in ps.
    pub fn total_ps(&self) -> f64 {
        self.as_array().iter().sum()
    }

    /// Normalized shares in [`CostBreakdown::LABELS`] order. Sums to 1.0
    /// (within f64 rounding) whenever any time was attributed; all zero
    /// otherwise.
    pub fn shares(&self) -> [f64; 6] {
        let total = self.total_ps();
        let mut a = self.as_array();
        if total > 0.0 {
            for v in &mut a {
                *v /= total;
            }
        }
        a
    }
}

impl std::ops::Add for CostBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            compute_ps: self.compute_ps + rhs.compute_ps,
            cache_ps: self.cache_ps + rhs.cache_ps,
            coherence_ps: self.coherence_ps + rhs.coherence_ps,
            dram_queue_ps: self.dram_queue_ps + rhs.dram_queue_ps,
            dram_service_ps: self.dram_service_ps + rhs.dram_service_ps,
            pim_link_ps: self.pim_link_ps + rhs.pim_link_ps,
        }
    }
}

impl std::ops::AddAssign for CostBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// Per-function-tag accounting (drives the paper's per-function breakdowns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagStats {
    /// Energy attributed to the tag.
    pub energy: EnergyBreakdown,
    /// Execution + exposed-stall time attributed to the tag, in ps.
    pub time_ps: Ps,
    /// Retired operations.
    pub ops: OpMix,
    /// Memory-system activity.
    pub activity: Activity,
    /// Lines that missed the last private cache level and went to memory.
    pub memory_lines: u64,
}

impl TagStats {
    /// Fraction of this tag's energy that is data movement.
    pub fn data_movement_fraction(&self) -> f64 {
        self.energy.data_movement_fraction()
    }
}

/// One compute engine executing a kernel against a simulated memory system.
///
/// The context keeps a monotonically advancing clock (picoseconds), a bump
/// allocator for simulated addresses, a per-tag energy/time ledger, and the
/// CPU↔PIM coherence model. See the crate docs for the full workflow.
///
/// # Errors
///
/// Kernel-facing operations ([`SimContext::read`], [`SimContext::write`],
/// [`SimContext::ops`]) stay infallible so `Kernel::run` needs no plumbing.
/// Instead the context *poisons* itself on the first failure — an injected
/// fault, an unsupported port, a tripped watchdog — recording the error and
/// turning every later operation into a no-op. Drivers inspect
/// [`SimContext::error`] (or use `OffloadEngine::try_run`, which does) after
/// the kernel returns.
#[derive(Debug)]
pub struct SimContext {
    mem: MemorySystem,
    timing: EngineTiming,
    port: Port,
    params: EnergyParams,
    now_ps: Ps,
    tag_stack: Vec<&'static str>,
    accounts: BTreeMap<&'static str, TagStats>,
    next_addr: u64,
    coherence: CoherenceModel,
    offloaded: bool,
    faults: Option<FaultPlan>,
    watchdog: Watchdog,
    host_events: u64,
    cost: CostBreakdown,
    error: Option<DmpimError>,
    tracer: Tracer,
    tracks: Option<CtxTracks>,
    /// Offset added to `now_ps` when stamping trace events, so resilient
    /// drivers can place each attempt on one world timeline.
    base_ps: Ps,
}

/// Per-row accounting template for a ranged-access hit streak: what one
/// all-hit row of a fixed line count books on the current port/engine.
#[derive(Debug, Clone, Copy)]
struct RowTemplate {
    /// Exposed stall per row, in ps.
    stall: Ps,
    /// Per-row increment of `CostBreakdown::cache_ps` (the scalar path's
    /// `latency * (stall / latency)`, kept in its exact f64 form).
    cache_add: f64,
    /// Per-row energy into the L1 component, in pJ.
    row_pj: f64,
    /// Whether activity lands in `scratch_accesses` (PIM accelerator)
    /// rather than `l1_accesses`.
    scratch: bool,
}

/// Track ids this context emits on (resolved once at attach time).
#[derive(Debug, Clone, Copy)]
struct CtxTracks {
    engine: TrackId,
    phases: TrackId,
    faults: TrackId,
}

impl SimContext {
    /// Build a context for an arbitrary engine/port combination.
    ///
    /// Construction stays infallible so drivers need no plumbing: if
    /// `platform.mem` fails validation the context is built over a
    /// known-good fallback memory system but starts *poisoned* with the
    /// [`DmpimError::InvalidConfig`], so nothing is simulated and the
    /// driver reports the configuration error like any other fault.
    pub fn new(platform: Platform, timing: EngineTiming, port: Port) -> Self {
        let (mem, config_error) = match MemorySystem::new(platform.mem) {
            Ok(mem) => (mem, None),
            Err(e) => (MemorySystem::fallback(), Some(e)),
        };
        Self {
            mem,
            coherence: CoherenceModel::new(platform.coherence),
            params: platform.energy,
            timing,
            port,
            now_ps: 0,
            tag_stack: Vec::new(),
            accounts: BTreeMap::new(),
            next_addr: 0x1_0000,
            offloaded: false,
            faults: None,
            watchdog: Watchdog::unlimited(),
            host_events: 0,
            cost: CostBreakdown::default(),
            error: config_error,
            tracer: Tracer::disabled(),
            tracks: None,
            base_ps: 0,
        }
    }

    /// Attach a tracer: kernel phases, engine activity, memory events and
    /// fault instants are recorded on it. A disabled tracer detaches all
    /// hooks (including the memory system's), restoring the no-op path.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.mem.set_tracer(tracer);
        if tracer.enabled() {
            self.tracks = Some(CtxTracks {
                engine: tracer.track(self.timing.label()),
                phases: tracer.track("kernel-phases"),
                faults: tracer.track("faults"),
            });
        } else {
            self.tracks = None;
        }
        self.tracer = tracer.clone();
        self
    }

    /// The tracer attached to this context (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Offset trace-event timestamps by `base_ps` (world time of this
    /// context's start). Local accounting (`now_ps`) is unaffected.
    pub fn set_time_base(&mut self, base_ps: Ps) {
        self.base_ps = base_ps;
    }

    /// Current time on the world (trace) timeline.
    fn sim_ps(&self) -> Ps {
        self.base_ps + self.now_ps
    }

    /// Attach a fault plan: subsequent accesses and op retirements are
    /// subject to its scheduled and per-access faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Bound this context's progress with a watchdog.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// A CPU-only context on the given platform (most tests start here).
    pub fn cpu_only(platform: Platform) -> Self {
        Self::new(platform, EngineTiming::soc_cpu(), Port::Cpu)
    }

    /// The engine currently executing.
    pub fn timing(&self) -> EngineTiming {
        self.timing
    }

    /// The memory port in use.
    pub fn port(&self) -> Port {
        self.port
    }

    /// Current simulated time, in ps.
    pub fn now_ps(&self) -> Ps {
        self.now_ps
    }

    /// Energy parameters in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Allocate `bytes` of simulated address space (4 kB aligned).
    pub fn alloc(&mut self, bytes: u64) -> Buffer {
        let base = self.next_addr;
        self.next_addr += bytes.max(1).div_ceil(4096) * 4096;
        Buffer::new(base, bytes)
    }

    fn current_tag(&self) -> &'static str {
        self.tag_stack.last().copied().unwrap_or(OTHER_TAG)
    }

    fn account(&mut self) -> &mut TagStats {
        let tag = self.current_tag();
        self.accounts.entry(tag).or_default()
    }

    /// Attribute everything inside `f` to `tag` (nesting: innermost wins).
    ///
    /// With a tracer attached, each scope also becomes a span on the
    /// `kernel-phases` track, so the per-function breakdown is visible on
    /// the timeline.
    pub fn scoped<R>(&mut self, tag: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = self.sim_ps();
        self.tag_stack.push(tag);
        let r = f(self);
        self.tag_stack.pop();
        if let Some(tracks) = self.tracks {
            let end = self.sim_ps();
            self.tracer.complete(tracks.phases, tag, t0, end.saturating_sub(t0));
        }
        r
    }

    /// Drop an instant marker on the `kernel-phases` track at the current
    /// simulated time. No-op without a tracer attached.
    pub fn mark(&self, name: impl Into<std::borrow::Cow<'static, str>>) {
        if let Some(tracks) = self.tracks {
            self.tracer.instant(tracks.phases, name, self.sim_ps());
        }
    }

    /// Record the first failure and poison the context. Later operations
    /// become no-ops so a kernel mid-flight cannot corrupt the ledger.
    fn trip(&mut self, e: DmpimError) {
        if self.error.is_none() {
            if let Some(tracks) = self.tracks {
                self.tracer.instant(tracks.faults, e.label(), self.sim_ps());
                self.tracer.count("faults.tripped", 1);
            }
            self.error = Some(e);
        }
    }

    /// Bump the host-event counter and check the watchdog. Returns `false`
    /// when the context is (or just became) poisoned.
    fn tick(&mut self) -> bool {
        if self.error.is_some() {
            return false;
        }
        self.host_events += 1;
        if self.watchdog.is_armed() {
            if let Err(e) = self.watchdog.check(self.now_ps, self.host_events) {
                self.trip(e);
                return false;
            }
        }
        true
    }

    /// Perform a memory access of `bytes` at `addr`.
    ///
    /// On a poisoned context this is a no-op; with a fault plan attached,
    /// injected faults poison the context (see the type-level docs).
    pub fn access(&mut self, addr: u64, bytes: u64, kind: AccessKind) {
        if bytes == 0 || !self.tick() {
            return;
        }
        if self.port != Port::Cpu {
            if let Some(plan) = self.faults.as_mut() {
                if let Some(_remaining) = plan.pim_unavailable(self.now_ps) {
                    let at_ps = self.now_ps;
                    self.trip(DmpimError::FaultTransient {
                        kind: FaultKind::PimUnavailable,
                        at_ps,
                    });
                    return;
                }
                if plan.vault_failed(addr, self.now_ps) {
                    let at_ps = self.now_ps;
                    self.trip(DmpimError::FaultUnrecoverable {
                        kind: FaultKind::VaultFailure,
                        at_ps,
                    });
                    return;
                }
            }
        }
        let out = match self.mem.access_from(self.port, addr, bytes, kind, self.now_ps) {
            Ok(out) => out,
            Err(e) => {
                self.trip(e);
                return;
            }
        };
        let mut stall = self.timing.exposed_stall_ps(out.latency_ps);
        let mut uncorrectable = false;
        if let Some(plan) = self.faults.as_mut() {
            let dram_bytes = out.activity.dram_read_bytes + out.activity.dram_write_bytes;
            // `draw_dram_faults(0)` is a guaranteed no-op (no RNG draw),
            // so cache hits skip the call entirely.
            if dram_bytes > 0 {
                let flips = plan.draw_dram_faults(dram_bytes);
                stall += flips.corrected * plan.config().ecc.correction_ps;
                uncorrectable = flips.uncorrectable;
            }
            if self.port != Port::Cpu {
                let factor = plan.throttle_factor(self.now_ps);
                if factor != 1.0 {
                    let slowed = (stall as f64 * factor) as Ps;
                    plan.note_throttled(slowed - stall);
                    stall = slowed;
                }
            }
        }
        if uncorrectable {
            // Detected-uncorrectable: the access is still charged (the DRAM
            // cycles happened) but the data is lost — surface a transient
            // fault the offload layer can retry.
            let at_ps = self.now_ps;
            self.trip(DmpimError::FaultTransient { kind: FaultKind::BitFlip, at_ps });
        }
        self.commit_outcome(&out, stall);
    }

    /// Book one access outcome: trace the stall, advance the clock, split
    /// the exposed stall across cost layers, count coherence lookups, and
    /// price the activity into the current tag's ledger. Shared tail of
    /// [`SimContext::access`] and the ranged engine's partial-row path.
    fn commit_outcome(&mut self, out: &AccessOutcome, stall: Ps) {
        if self.tracks.is_some() {
            self.tracer.observe(stall_metric(self.timing.engine), stall);
        }
        self.now_ps += stall;
        // Attribute the exposed stall across model layers in the same
        // proportions as the access's exact latency split (ECC correction
        // and throttle stretch every component uniformly).
        if out.latency_ps > 0 {
            let scale = stall as f64 / out.latency_ps as f64;
            let b = out.breakdown;
            self.cost.cache_ps += b.cache_ps as f64 * scale;
            self.cost.dram_queue_ps += b.queue_ps as f64 * scale;
            self.cost.dram_service_ps += b.service_ps as f64 * scale;
            self.cost.pim_link_ps += b.link_ps as f64 * scale;
        }
        if self.port != Port::Cpu && out.memory_lines > 0 {
            self.coherence.directory_lookups(out.memory_lines);
        }
        let e = self.params.price_activity(&out.activity);
        let acc = self.account();
        acc.energy += e;
        acc.time_ps += stall;
        acc.activity += out.activity;
        acc.memory_lines += out.memory_lines;
    }

    /// A load of `bytes` at `addr`.
    pub fn read(&mut self, addr: u64, bytes: u64) {
        self.access(addr, bytes, AccessKind::Read);
    }

    /// A store of `bytes` at `addr`.
    pub fn write(&mut self, addr: u64, bytes: u64) {
        self.access(addr, bytes, AccessKind::Write);
    }

    /// Perform `rows` accesses of `row_bytes` each, at `addr`,
    /// `addr + row_stride`, `addr + 2*row_stride`, ... — the stride/
    /// run-length descriptor the ranged engine consumes.
    ///
    /// Bit-identical to the scalar loop
    /// `for i in 0..rows { self.access(addr + i*row_stride, row_bytes, kind) }`
    /// (same clock, ledger, energy bits, cache state, watchdog trips), but
    /// rows whose lines all hit the first private cache level are committed
    /// in batches: one set-lookup per distinct line and one template-priced
    /// accounting pass per streak, instead of the full per-access walk.
    /// With a fault plan or tracer attached (or the fast path disabled) the
    /// engine falls back to the scalar loop, which draws per-access faults
    /// and emits per-access trace events in the reference order.
    pub fn access_range(
        &mut self,
        addr: u64,
        row_bytes: u64,
        row_stride: u64,
        rows: u64,
        kind: AccessKind,
    ) {
        if row_bytes == 0 || rows == 0 || self.error.is_some() {
            return;
        }
        let mut done = 0;
        if self.faults.is_none() && self.tracks.is_none() {
            done = self.ranged_fast(addr, row_bytes, row_stride, rows, kind);
        }
        for i in done..rows {
            self.access(addr + i * row_stride, row_bytes, kind);
        }
    }

    /// Ranged loads (see [`SimContext::access_range`]).
    pub fn read_rows(&mut self, addr: u64, row_bytes: u64, row_stride: u64, rows: u64) {
        self.access_range(addr, row_bytes, row_stride, rows, AccessKind::Read);
    }

    /// Ranged stores (see [`SimContext::access_range`]).
    pub fn write_rows(&mut self, addr: u64, row_bytes: u64, row_stride: u64, rows: u64) {
        self.access_range(addr, row_bytes, row_stride, rows, AccessKind::Write);
    }

    /// Latency/energy template of one all-hit row of `lines` lines on the
    /// current port: every committed streak row books exactly these values,
    /// which equal what the scalar walk computes for the same row.
    fn row_template(&self, lines: u64) -> RowTemplate {
        let (latency, scratch) = match self.port {
            Port::Cpu => (self.mem.config().l1_hit_ps + CPU_LINE_PS * lines, false),
            Port::PimCore => (PIM_L1_HIT_PS + PIM_LINE_PS * lines, false),
            Port::PimAccel => (SCRATCH_HIT_PS + PIM_LINE_PS * lines, true),
        };
        let stall = self.timing.exposed_stall_ps(latency);
        // Same split arithmetic as `commit_outcome`: an all-hit row's
        // breakdown is pure cache time, so only that lane moves.
        let cache_add = if latency > 0 {
            latency as f64 * (stall as f64 / latency as f64)
        } else {
            0.0
        };
        // An all-hit row prices into the L1 component only; every other
        // lane of `price_activity` adds an exact +0.0, and the L1 lane's
        // own two terms reduce to a single product because the unused one
        // is `0 * pj == +0.0` (adding +0.0 never changes a non-negative
        // f64). So the direct product below is bit-equal to pricing the
        // full Activity record.
        let row_pj = if scratch {
            lines as f64 * self.params.scratch_access_pj
        } else {
            lines as f64 * self.params.l1_access_pj
        };
        RowTemplate { stall, cache_add, row_pj, scratch }
    }

    /// The ranged fast path: commit hit streaks in batches, complete each
    /// partial row on the reference walk, and stop at the first condition
    /// the batch engine cannot express. Returns the number of leading rows
    /// fully processed; the caller replays the rest through the scalar
    /// loop (`rows` once a watchdog trip or memory error poisoned us —
    /// the remaining accesses would be no-ops).
    fn ranged_fast(
        &mut self,
        addr: u64,
        row_bytes: u64,
        row_stride: u64,
        rows: u64,
        kind: AccessKind,
    ) -> u64 {
        let mut done = 0u64;
        while done < rows {
            let base = addr + done * row_stride;
            let t = self.row_template(line_count(base, row_bytes));
            // The scalar loop ticks (host event + watchdog check) *before*
            // each row's walk; bound the streak so no tick inside it can
            // trip, and reproduce the exact trip via `tick()` when the
            // very next one would.
            let allowed = if self.watchdog.is_armed() {
                self.watchdog.allowance(self.now_ps, self.host_events, t.stall)
            } else {
                u64::MAX
            };
            if allowed == 0 {
                self.tick();
                return rows;
            }
            let want = (rows - done).min(allowed);
            let r = self.mem.try_rows(self.port, base, row_bytes, row_stride, want, kind);
            let full = r.full_rows;
            if full > 0 {
                self.host_events += full;
                self.now_ps += t.stall * full;
                // The integer counters batch associatively; the two f64
                // accumulators take their adds one row at a time so the
                // bit pattern matches the scalar sequence exactly.
                let tag = self.tag_stack.last().copied().unwrap_or(OTHER_TAG);
                let acc = self.accounts.entry(tag).or_default();
                let lane = acc.energy.get_mut(Component::L1);
                let mut e_acc = *lane;
                let mut c_acc = self.cost.cache_ps;
                for _ in 0..full {
                    e_acc += t.row_pj;
                    c_acc += t.cache_add;
                }
                *lane = e_acc;
                self.cost.cache_ps = c_acc;
                acc.time_ps += t.stall * full;
                if t.scratch {
                    acc.activity.scratch_accesses += r.lines_per_row * full;
                } else {
                    acc.activity.l1_accesses += r.lines_per_row * full;
                }
                done += full;
            }
            if let Some(hits) = r.partial_hits {
                // The row at `done` had its first `hits` lines committed
                // as hits before one missed; its tick cannot trip (its
                // index is below `allowed`). Finish it on the reference
                // walk, which books misses/writebacks/queueing exactly.
                if !self.tick() {
                    return rows;
                }
                let row_addr = addr + done * row_stride;
                let out = match self.mem.finish_row(
                    self.port,
                    row_addr,
                    row_bytes,
                    kind,
                    self.now_ps,
                    hits,
                ) {
                    Ok(out) => out,
                    Err(e) => {
                        self.trip(e);
                        return rows;
                    }
                };
                let stall = self.timing.exposed_stall_ps(out.latency_ps);
                self.commit_outcome(&out, stall);
                done += 1;
            } else if full == 0 {
                // Zero progress: the memory system's fast path is gated
                // off (coalescing disabled, tracer hooks, unsupported
                // port). Hand the rest to the scalar loop for the
                // reference behavior, including any port error.
                return done;
            }
            // `full > 0 && partial_hits == None`: the streak ended at a
            // row-shape change or at `want`; loop to start a new streak.
        }
        rows
    }

    /// Retire an operation mix on the active engine.
    ///
    /// No-op on a poisoned context; thermal throttle (if a fault plan is
    /// active) stretches the execution time of logic-layer engines.
    pub fn ops(&mut self, mix: OpMix) {
        if !self.tick() {
            return;
        }
        let mut dur = self.timing.execute_ps(&mix);
        if self.port != Port::Cpu {
            if let Some(plan) = self.faults.as_mut() {
                let factor = plan.throttle_factor(self.now_ps);
                if factor != 1.0 {
                    let slowed = (dur as f64 * factor) as Ps;
                    plan.note_throttled(slowed - dur);
                    dur = slowed;
                }
            }
        }
        self.now_ps += dur;
        self.cost.compute_ps += dur as f64;
        let engine = self.timing.engine;
        if self.tracks.is_some() {
            self.tracer.count(ops_metric(engine), mix.total());
        }
        let pj = mix.scalar as f64 * self.params.op_energy_pj(engine, OpClass::Scalar)
            + mix.simd as f64 * self.params.op_energy_pj(engine, OpClass::Simd)
            + mix.mul as f64 * self.params.op_energy_pj(engine, OpClass::Mul)
            + mix.branch as f64 * self.params.op_energy_pj(engine, OpClass::Branch);
        let acc = self.account();
        acc.energy.add_pj(Component::Cpu, pj);
        acc.time_ps += dur;
        acc.ops += mix;
    }

    /// Retire an op mix spread evenly across `threads` cores: wall-clock
    /// time divides by the thread count, energy does not (used for the
    /// multithreaded GEMM kernel, which TensorFlow runs on all SoC cores).
    pub fn ops_parallel(&mut self, mix: OpMix, threads: u64) {
        let t0 = self.now_ps;
        self.ops(mix);
        let full = self.now_ps - t0;
        self.now_ps = t0 + full / threads.max(1);
        // Keep per-tag time and attributed compute consistent with the
        // wall clock.
        self.cost.compute_ps -= (full - full / threads.max(1)) as f64;
        let acc = self.account();
        acc.time_ps -= full - full / threads.max(1);
    }

    /// Advance the clock without doing work (idle wait / dependency).
    pub fn advance(&mut self, ps: Ps) {
        self.now_ps += ps;
    }

    /// Switch which engine executes (used when a kernel hands work between
    /// host and PIM inside one timeline).
    pub fn switch_engine(&mut self, timing: EngineTiming, port: Port) {
        self.timing = timing;
        self.port = port;
        if self.tracks.is_some() {
            let engine = self.tracer.track(timing.label());
            if let Some(t) = &mut self.tracks {
                t.engine = engine;
            }
        }
    }

    /// Charge an offload transition (§8.2): flush/invalidate CPU caches for
    /// a region of `region_bytes`, exchange hand-off messages.
    ///
    /// No-op on a poisoned context.
    pub fn offload_transition(&mut self, region_bytes: u64, begin: bool) {
        if self.error.is_some() {
            return;
        }
        if let Some(tracks) = self.tracks {
            let name = if begin { "offload-begin" } else { "offload-end" };
            self.tracer.instant_args(
                tracks.engine,
                name,
                self.sim_ps(),
                vec![("region_bytes", region_bytes.into())],
            );
        }
        let cost = if begin {
            self.offloaded = true;
            self.coherence.offload_begin(region_bytes)
        } else {
            self.offloaded = false;
            self.coherence.offload_end(region_bytes)
        };
        // Dirty lines flushed at `begin` become DRAM writes over the
        // off-chip path; invalidations at `end` are message-only.
        let mut act = Activity::new();
        if begin {
            let dirty = self.mem.flush_cpu_caches().max(cost.lines);
            act.dram_write_bytes = dirty * LINE_BYTES;
            act.offchip_bytes = dirty * LINE_BYTES;
            act.memctrl_requests = dirty;
        }
        act.offchip_bytes += cost.message_bytes;
        self.now_ps += cost.latency_ps;
        self.cost.coherence_ps += cost.latency_ps as f64;
        let msg_pj = 2.0 * self.params.coherence_msg_pj;
        let e = self.params.price_activity(&act);
        let acc = self.account();
        acc.energy += e;
        acc.energy.add_pj(Component::Interconnect, msg_pj);
        acc.time_ps += cost.latency_ps;
        acc.activity += act;
    }

    /// Total energy across all tags.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.accounts
            .values()
            .fold(EnergyBreakdown::new(), |acc, t| acc + t.energy)
    }

    /// Total memory activity across all tags.
    pub fn total_activity(&self) -> Activity {
        let mut a = Activity::new();
        for t in self.accounts.values() {
            a += t.activity;
        }
        a
    }

    /// Total retired operations (the paper's instruction count proxy).
    pub fn instructions(&self) -> u64 {
        self.accounts.values().map(|t| t.ops.total()).sum()
    }

    /// Lines that left the last private cache level toward memory.
    pub fn memory_lines(&self) -> u64 {
        self.accounts.values().map(|t| t.memory_lines).sum()
    }

    /// Last-level-cache misses per kilo-instruction (§3.2's criterion 3).
    pub fn mpki(&self) -> f64 {
        let instr = self.instructions();
        if instr == 0 {
            0.0
        } else {
            self.memory_lines() as f64 * 1000.0 / instr as f64
        }
    }

    /// Per-tag ledger, in tag order.
    pub fn tag_stats(&self) -> &BTreeMap<&'static str, TagStats> {
        &self.accounts
    }

    /// Stats for one tag, if it was ever used.
    pub fn tag(&self, tag: &str) -> Option<&TagStats> {
        self.accounts.get(tag)
    }

    /// Simulated-time cost attribution across the six model layers
    /// (compute / cache / coherence / DRAM queue / DRAM service /
    /// PIM link) accumulated by every access, op retirement, and
    /// offload transition on this context.
    pub fn cost_breakdown(&self) -> CostBreakdown {
        self.cost
    }

    /// Coherence counters (messages, flushes, directory lookups).
    pub fn coherence_stats(&self) -> pim_memsim::CoherenceStats {
        self.coherence.stats()
    }

    /// Direct access to the memory system (stats, cache contents).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Enable or disable the memory system's line-coalescing fast path.
    /// On by default; the differential tests disable it to compare the
    /// fast path against the reference per-line walk bit for bit.
    pub fn set_fast_path(&mut self, on: bool) {
        self.mem.set_fast_path(on);
    }

    /// Poison the context with an error discovered by the kernel itself
    /// (e.g. corrupt input data). Later operations become no-ops and the
    /// driver sees the error exactly as for injected faults.
    pub fn fail(&mut self, e: DmpimError) {
        self.trip(e);
    }

    /// The first error this context hit, if it is poisoned.
    pub fn error(&self) -> Option<&DmpimError> {
        self.error.as_ref()
    }

    /// Whether the context is poisoned (all further work is a no-op).
    pub fn is_poisoned(&self) -> bool {
        self.error.is_some()
    }

    /// Host-side events processed (accesses + op retirements); the
    /// denominator of the watchdog's progress bound.
    pub fn host_events(&self) -> u64 {
        self.host_events
    }

    /// Counters of every fault the attached plan injected (default when no
    /// plan is attached).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|p| *p.stats()).unwrap_or_default()
    }

    /// Detach the fault plan (with its updated stats and draw-stream
    /// position), so a driver can carry it into a retry attempt.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }
}

/// Per-engine counter name for retired operations.
fn ops_metric(engine: Engine) -> &'static str {
    match engine {
        Engine::SocCpu => "ops.cpu",
        Engine::PimCore => "ops.pim-core",
        Engine::PimAccel => "ops.pim-accel",
        Engine::CodecHw => "ops.codec-hw",
    }
}

/// Per-engine histogram name for exposed memory-stall time.
fn stall_metric(engine: Engine) -> &'static str {
    match engine {
        Engine::SocCpu => "stall_ps.cpu",
        Engine::PimCore => "stall_ps.pim-core",
        Engine::PimAccel => "stall_ps.pim-accel",
        Engine::CodecHw => "stall_ps.codec-hw",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SimContext {
        SimContext::cpu_only(Platform::baseline())
    }

    #[test]
    fn clock_advances_with_work() {
        let mut c = ctx();
        let t0 = c.now_ps();
        c.ops(OpMix::scalar(1000));
        assert!(c.now_ps() > t0);
        let t1 = c.now_ps();
        c.read(0x1000, 4096);
        assert!(c.now_ps() > t1);
    }

    #[test]
    fn tags_attribute_energy() {
        let mut c = ctx();
        c.scoped("tiling", |c| c.read(0, 64 * 1024));
        c.scoped("blit", |c| c.ops(OpMix::scalar(100)));
        let tiling = c.tag("tiling").unwrap();
        let blit = c.tag("blit").unwrap();
        assert!(tiling.energy.data_movement_pj() > 0.0);
        assert_eq!(tiling.energy.compute_pj(), 0.0);
        assert!(blit.energy.compute_pj() > 0.0);
        assert!(c.tag("nope").is_none());
    }

    #[test]
    fn nested_scopes_attribute_to_innermost() {
        let mut c = ctx();
        c.scoped("outer", |c| {
            c.ops(OpMix::scalar(10));
            c.scoped("inner", |c| c.ops(OpMix::scalar(20)));
        });
        assert_eq!(c.tag("outer").unwrap().ops.scalar, 10);
        assert_eq!(c.tag("inner").unwrap().ops.scalar, 20);
    }

    #[test]
    fn untagged_work_lands_in_other() {
        let mut c = ctx();
        c.ops(OpMix::scalar(5));
        assert_eq!(c.tag(OTHER_TAG).unwrap().ops.scalar, 5);
    }

    #[test]
    fn mpki_reflects_streaming_misses() {
        let mut c = ctx();
        // Memory-intensive: stream 1 MB with barely any compute.
        c.read(0, 1 << 20);
        c.ops(OpMix::scalar(1000));
        assert!(c.mpki() > 10.0, "mpki = {}", c.mpki());
    }

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut c = ctx();
        let a = c.alloc(100);
        let b = c.alloc(100);
        assert_eq!(a.base() % 4096, 0);
        assert!(b.base() >= a.base() + 4096);
    }

    #[test]
    fn offload_transition_costs_time_and_energy() {
        let mut c = SimContext::new(Platform::pim(), EngineTiming::pim_core(), Port::PimCore);
        let t0 = c.now_ps();
        let e0 = c.total_energy().total_pj();
        c.offload_transition(1 << 20, true);
        assert!(c.now_ps() > t0);
        assert!(c.total_energy().total_pj() > e0);
        c.offload_transition(1 << 20, false);
        assert_eq!(c.coherence_stats().messages, 4);
    }

    #[test]
    fn directory_lookups_counted_for_pim_port() {
        let mut c = SimContext::new(Platform::pim(), EngineTiming::pim_core(), Port::PimCore);
        c.read(0, 64 * 1024);
        assert!(c.coherence_stats().directory_lookups > 0);
    }

    #[test]
    fn scoped_work_becomes_phase_spans() {
        let t = Tracer::new();
        let mut c = ctx().with_tracer(&t);
        c.scoped("texture_tiling", |c| {
            c.mark("tile-start");
            c.read(0, 64 * 1024);
        });
        let names: Vec<String> = t.events().iter().map(|e| e.name.to_string()).collect();
        assert!(names.iter().any(|n| n == "texture_tiling"));
        assert!(names.iter().any(|n| n == "tile-start"));
        assert!(t.tracks().iter().any(|n| n == "kernel-phases"));
        assert!(t.metrics().histograms.contains_key("stall_ps.cpu"));
    }

    #[test]
    fn faults_leave_instants_on_fault_track() {
        use pim_faults::FaultConfig;
        let t = Tracer::new();
        let plan = FaultPlan::new(
            FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() },
            9,
        )
        .unwrap();
        let mut c = SimContext::new(Platform::pim(), EngineTiming::pim_core(), Port::PimCore)
            .with_tracer(&t)
            .with_fault_plan(plan);
        c.read(0, 4096);
        assert!(c.is_poisoned());
        assert_eq!(t.metrics().counters["faults.tripped"], 1);
        let names: Vec<String> = t.events().iter().map(|e| e.name.to_string()).collect();
        assert!(names.iter().any(|n| n == "vault-failure"), "{names:?}");
    }

    #[test]
    fn time_base_offsets_trace_timestamps_only() {
        let t = Tracer::new();
        let mut c = ctx().with_tracer(&t);
        c.set_time_base(1_000_000);
        c.scoped("work", |c| c.ops(OpMix::scalar(100)));
        assert!(c.now_ps() < 1_000_000);
        let ev = t.events().into_iter().find(|e| e.name == "work").unwrap();
        assert!(ev.ts_ps >= 1_000_000);
    }

    #[test]
    fn disabled_tracer_keeps_results_identical() {
        let run = |traced: bool| {
            let t = Tracer::disabled();
            let mut c = if traced { ctx().with_tracer(&t) } else { ctx() };
            c.scoped("a", |c| {
                c.read(0, 1 << 20);
                c.ops(OpMix::scalar(10_000));
            });
            (c.now_ps(), c.total_energy().total_pj().to_bits(), c.instructions())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn invalid_platform_poisons_instead_of_panicking() {
        let mut platform = Platform::baseline();
        platform.mem.cpu_l1.associativity = 0;
        let mut c = SimContext::cpu_only(platform);
        assert!(c.is_poisoned());
        assert!(matches!(c.error(), Some(DmpimError::InvalidConfig { .. })));
        // Poisoned from birth: no work is simulated, the ledger stays empty.
        c.read(0, 1 << 20);
        c.ops(OpMix::scalar(1000));
        assert_eq!(c.now_ps(), 0);
        assert_eq!(c.instructions(), 0);
    }

    #[test]
    fn cost_breakdown_attributes_each_operation_kind() {
        let mut c = SimContext::new(Platform::pim(), EngineTiming::pim_core(), Port::PimCore);
        assert_eq!(c.cost_breakdown(), CostBreakdown::default());
        c.ops(OpMix::scalar(1000));
        let after_ops = c.cost_breakdown();
        assert!(after_ops.compute_ps > 0.0);
        assert_eq!(after_ops.cache_ps + after_ops.dram_service_ps, 0.0);
        c.read(0, 1 << 20);
        let after_read = c.cost_breakdown();
        assert!(after_read.cache_ps > 0.0);
        assert!(after_read.dram_service_ps > 0.0);
        assert!(after_read.pim_link_ps > 0.0);
        assert_eq!(after_read.dram_queue_ps, 0.0, "pim port never queues off-chip");
        c.offload_transition(1 << 20, true);
        assert!(c.cost_breakdown().coherence_ps > 0.0);
        let shares = c.cost_breakdown().shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{shares:?}");
    }

    #[test]
    fn cost_breakdown_tracks_the_clock() {
        // With no fault plan, attributed time equals elapsed simulated
        // time up to the exposed-stall model's per-access rounding.
        let mut c = ctx();
        c.ops(OpMix::scalar(500));
        c.read(0, 1 << 16);
        c.write(0, 1 << 16);
        let total = c.cost_breakdown().total_ps();
        let now = c.now_ps() as f64;
        assert!((total - now).abs() / now < 1e-6, "{total} vs {now}");
    }

    #[test]
    fn total_energy_sums_tags() {
        let mut c = ctx();
        c.scoped("a", |c| c.ops(OpMix::scalar(10)));
        c.scoped("b", |c| c.ops(OpMix::scalar(10)));
        let total = c.total_energy().total_pj();
        let parts: f64 = c.tag_stats().values().map(|t| t.energy.total_pj()).sum();
        assert!((total - parts).abs() < 1e-9);
    }
}
