//! The PIM offload framework — the paper's primary contribution as a library.
//!
//! This crate ties the substrates together into the methodology of
//! Boroumand et al. (ASPLOS 2018):
//!
//! 1. Write a workload kernel as ordinary Rust that computes real results,
//!    but routes its loads/stores and retired ops through a [`SimContext`]
//!    (see [`Kernel`]).
//! 2. Run it under each [`ExecutionMode`] — `CpuOnly`, `PimCore`, `PimAcc` —
//!    with the [`OffloadEngine`], which swaps the compute engine, memory
//!    path and platform underneath the kernel and charges CPU↔PIM
//!    coherence costs at offload boundaries (§8.2).
//! 3. Inspect the [`RunReport`]: per-component energy (Figure 2's CPU / L1 /
//!    LLC / interconnect / memctrl / DRAM split), per-function tags,
//!    runtime, MPKI and traffic.
//! 4. Feed a workload-level profile through [`identify`] to apply the §3.2
//!    PIM-target criteria, and through [`area`] to check the §3.3 vault
//!    area budget.
//!
//! # Example
//!
//! ```
//! use pim_core::{ExecutionMode, Kernel, OffloadEngine, SimContext};
//! use pim_cpusim::OpMix;
//!
//! /// Stream 1 MB through the memory system, doubling each 64-bit word.
//! struct Doubler;
//! impl Kernel for Doubler {
//!     fn name(&self) -> &'static str { "doubler" }
//!     fn working_set_bytes(&self) -> u64 { 1 << 20 }
//!     fn run(&mut self, ctx: &mut SimContext) {
//!         let buf = ctx.alloc(1 << 20);
//!         ctx.scoped("double", |ctx| {
//!             for chunk in 0..256u64 {
//!                 ctx.read(buf.addr(chunk * 4096), 4096);
//!                 ctx.ops(OpMix::simd(4096 / 32));
//!                 ctx.write(buf.addr(chunk * 4096), 4096);
//!             }
//!         });
//!     }
//! }
//!
//! let engine = OffloadEngine::default();
//! let cpu = engine.run(&mut Doubler, ExecutionMode::CpuOnly);
//! let pim = engine.run(&mut Doubler, ExecutionMode::PimCore);
//! assert!(pim.energy.total_pj() < cpu.energy.total_pj());
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod area;
pub mod buffer;
pub mod context;
pub mod identify;
pub mod kernel;
pub mod offload;
pub mod platform;
pub mod report;

// The PRNG moved to `pim-faults` (the fault layer needs it below this
// crate); keep the old `pim_core::rng::SplitMix64` path working.
pub use pim_faults::rng;

pub use area::{AreaModel, PimTargetKind};
pub use buffer::{Buffer, Tracked};
pub use context::{CostBreakdown, SimContext, TagStats};
pub use identify::{Candidacy, CandidateProfile};
pub use kernel::Kernel;
pub use offload::{
    offload_region, overlap_ps, Degradation, ExecutionMode, OffloadEngine, ResiliencePolicy,
    RunReport,
};
pub use platform::Platform;

// Re-export the vocabulary types users need alongside this crate.
pub use pim_cpusim::{EngineTiming, OpMix};
pub use pim_energy::{Component, EnergyBreakdown, EnergyParams, Engine, OpClass, COMPONENTS};
pub use pim_faults::{
    DmpimError, EccConfig, FaultConfig, FaultKind, FaultPlan, FaultStats, Watchdog,
};
pub use pim_memsim::{AccessKind, Activity, MemConfig, Port, Ps};
pub use pim_trace::{JsonValue, MetricsReport, TraceEvent, Tracer, TrackId};
