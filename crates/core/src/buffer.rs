//! Simulated-address buffers and data-carrying tracked vectors.

use crate::context::SimContext;
use pim_memsim::AccessKind;

/// A region of simulated address space.
///
/// A `Buffer` carries *no data* — only placement. Kernels that keep their
/// own state (e.g. a frame in a `Vec<u8>`) allocate a `Buffer` of matching
/// size and report accesses against it. Kernels that want the bookkeeping
/// done for them use [`Tracked`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    base: u64,
    len: u64,
}

impl Buffer {
    pub(crate) fn new(base: u64, len: u64) -> Self {
        Self { base, len }
    }

    /// Base simulated address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Simulated address of byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn addr(&self, offset: u64) -> u64 {
        assert!(offset < self.len, "offset {offset} out of bounds ({})", self.len);
        self.base + offset
    }
}

/// A vector of real data bound to a simulated address range.
///
/// Every [`Tracked::get`]/[`Tracked::set`] performs the actual data access
/// *and* reports it to the [`SimContext`], so kernels stay honest: the
/// simulated traffic is exactly the traffic the computation needed.
/// Row/streaming helpers report one ranged access instead of per-element
/// traffic, which is how the hardware (and the paper's analysis) sees a
/// streaming kernel.
///
/// ```
/// use pim_core::{Platform, SimContext, Tracked};
/// let mut ctx = SimContext::cpu_only(Platform::baseline());
/// let mut v: Tracked<u32> = Tracked::zeroed(&mut ctx, 1024);
/// v.set(&mut ctx, 7, 42);
/// assert_eq!(v.get(&mut ctx, 7), 42);
/// ```
#[derive(Debug, Clone)]
pub struct Tracked<T> {
    data: Vec<T>,
    buf: Buffer,
}

impl<T: Copy + Default> Tracked<T> {
    /// Allocate `len` default-initialized elements.
    pub fn zeroed(ctx: &mut SimContext, len: usize) -> Self {
        Self::from_vec(ctx, vec![T::default(); len])
    }
}

impl<T: Copy> Tracked<T> {
    /// Bind an existing vector to freshly allocated simulated addresses.
    pub fn from_vec(ctx: &mut SimContext, data: Vec<T>) -> Self {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let buf = ctx.alloc(bytes.max(1));
        Self { data, buf }
    }

    fn elem_bytes() -> u64 {
        std::mem::size_of::<T>() as u64
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The simulated placement of this vector.
    pub fn buffer(&self) -> Buffer {
        self.buf
    }

    /// Load element `i`, reporting the access.
    pub fn get(&self, ctx: &mut SimContext, i: usize) -> T {
        ctx.read(self.buf.addr(i as u64 * Self::elem_bytes()), Self::elem_bytes());
        self.data[i]
    }

    /// Store element `i`, reporting the access.
    pub fn set(&mut self, ctx: &mut SimContext, i: usize, v: T) {
        ctx.write(self.buf.addr(i as u64 * Self::elem_bytes()), Self::elem_bytes());
        self.data[i] = v;
    }

    /// Borrow `n` elements starting at `i` as a slice, reporting one ranged
    /// read (a streaming load of the whole range).
    pub fn read_range(&self, ctx: &mut SimContext, i: usize, n: usize) -> &[T] {
        let bytes = n as u64 * Self::elem_bytes();
        if n > 0 {
            ctx.read(self.buf.addr(i as u64 * Self::elem_bytes()), bytes);
        }
        &self.data[i..i + n]
    }

    /// Mutably borrow `n` elements starting at `i`, reporting one ranged
    /// write (a streaming store over the whole range).
    pub fn write_range(&mut self, ctx: &mut SimContext, i: usize, n: usize) -> &mut [T] {
        let bytes = n as u64 * Self::elem_bytes();
        if n > 0 {
            ctx.write(self.buf.addr(i as u64 * Self::elem_bytes()), bytes);
        }
        &mut self.data[i..i + n]
    }

    /// Report a ranged access without borrowing (for mixed R/W passes).
    pub fn touch_range(&self, ctx: &mut SimContext, i: usize, n: usize, kind: AccessKind) {
        if n == 0 {
            return;
        }
        let bytes = n as u64 * Self::elem_bytes();
        ctx.access(self.buf.addr(i as u64 * Self::elem_bytes()), bytes, kind);
    }

    /// Report `rows` ranged accesses of `n` elements each, starting at
    /// element `i` and advancing `stride` elements between rows — a 2-D
    /// block as one stride/run-length descriptor for the ranged engine,
    /// equivalent to (but much cheaper than) a [`Tracked::touch_range`]
    /// per row.
    pub fn touch_rows(
        &self,
        ctx: &mut SimContext,
        i: usize,
        n: usize,
        stride: usize,
        rows: usize,
        kind: AccessKind,
    ) {
        if n == 0 || rows == 0 {
            return;
        }
        let eb = Self::elem_bytes();
        ctx.access_range(
            self.buf.addr(i as u64 * eb),
            n as u64 * eb,
            stride as u64 * eb,
            rows as u64,
            kind,
        );
    }

    /// Starting element index of every `width`-element row, in order.
    /// Streaming kernels iterate this and issue one ranged access per row
    /// instead of per-element traffic. A trailing partial row is skipped.
    pub fn rows(&self, width: usize) -> impl Iterator<Item = usize> {
        let n = self.data.len().checked_div(width).unwrap_or(0);
        (0..n).map(move |r| r * width)
    }

    /// Read-modify-write `n` elements starting at `i` in place: report
    /// one ranged read, then one ranged write, then apply `f` to the
    /// slice. The traffic matches a streaming load + store of the range.
    pub fn map_range(
        &mut self,
        ctx: &mut SimContext,
        i: usize,
        n: usize,
        f: impl FnOnce(&mut [T]),
    ) {
        self.touch_range(ctx, i, n, AccessKind::Read);
        f(self.write_range(ctx, i, n));
    }

    /// Copy `n` elements from `src[src_i..]` into `self[dst_i..]`,
    /// reporting one ranged read on `src` and one ranged write on `self`
    /// — the same traffic as a streaming row copy, with no intermediate
    /// allocation.
    pub fn copy_range_from(
        &mut self,
        ctx: &mut SimContext,
        dst_i: usize,
        src: &Tracked<T>,
        src_i: usize,
        n: usize,
    ) {
        let from = src.read_range(ctx, src_i, n);
        self.write_range(ctx, dst_i, n).copy_from_slice(from);
    }

    /// Store `v` into `n` elements starting at `i`, reporting one ranged
    /// write (a streaming fill).
    pub fn fill_range(&mut self, ctx: &mut SimContext, i: usize, n: usize, v: T) {
        self.write_range(ctx, i, n).fill(v);
    }

    /// Direct untracked view (for asserting results in tests; does not
    /// generate simulated traffic).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Direct untracked mutable view (initialization that would not create
    /// memory traffic in the modeled system, e.g. DMA-filled inputs).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the wrapper and return the data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn buffer_addr_bounds() {
        let b = Buffer::new(0x1000, 64);
        assert_eq!(b.addr(0), 0x1000);
        assert_eq!(b.addr(63), 0x103f);
        assert!(std::panic::catch_unwind(|| b.addr(64)).is_err());
    }

    #[test]
    fn tracked_get_set_roundtrip() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let mut t: Tracked<u16> = Tracked::zeroed(&mut ctx, 100);
        t.set(&mut ctx, 3, 7);
        assert_eq!(t.get(&mut ctx, 3), 7);
        assert_eq!(t.as_slice()[3], 7);
    }

    #[test]
    fn tracked_generates_traffic() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let t: Tracked<u64> = Tracked::zeroed(&mut ctx, 8192);
        let before = ctx.total_activity().l1_accesses;
        t.read_range(&mut ctx, 0, 8192);
        let after = ctx.total_activity().l1_accesses;
        assert_eq!(after - before, 8192 * 8 / 64); // one per line
    }

    #[test]
    fn distinct_tracked_vectors_do_not_alias() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let a: Tracked<u8> = Tracked::zeroed(&mut ctx, 4096);
        let b: Tracked<u8> = Tracked::zeroed(&mut ctx, 4096);
        let (ab, bb) = (a.buffer(), b.buffer());
        assert!(ab.base() + ab.len() <= bb.base() || bb.base() + bb.len() <= ab.base());
    }

    #[test]
    fn empty_buffer_rejects_all_offsets() {
        let b = Buffer::new(0x1000, 0);
        assert!(b.is_empty());
        assert!(std::panic::catch_unwind(|| b.addr(0)).is_err(), "addr(0) on empty must panic");
        assert!(std::panic::catch_unwind(|| b.addr(1)).is_err());
    }

    #[test]
    fn rows_yields_full_row_offsets() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let t: Tracked<u8> = Tracked::zeroed(&mut ctx, 10);
        assert_eq!(t.rows(4).collect::<Vec<_>>(), vec![0, 4], "trailing partial row skipped");
        assert_eq!(t.rows(0).count(), 0);
    }

    #[test]
    fn copy_range_from_matches_manual_copy_traffic() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let src: Tracked<u32> = Tracked::from_vec(&mut ctx, (0..256u32).collect());
        let mut a: Tracked<u32> = Tracked::zeroed(&mut ctx, 256);
        let mut b: Tracked<u32> = Tracked::zeroed(&mut ctx, 256);
        let t0 = ctx.total_activity().l1_accesses;
        a.copy_range_from(&mut ctx, 0, &src, 0, 256);
        let helper = ctx.total_activity().l1_accesses - t0;
        let t0 = ctx.total_activity().l1_accesses;
        let row = src.read_range(&mut ctx, 0, 256).to_vec();
        b.write_range(&mut ctx, 0, 256).copy_from_slice(&row);
        let manual = ctx.total_activity().l1_accesses - t0;
        assert_eq!(a.as_slice(), src.as_slice());
        assert_eq!(helper, manual);
    }

    #[test]
    fn map_range_reads_then_writes() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let mut t: Tracked<u8> = Tracked::from_vec(&mut ctx, vec![1; 128]);
        let t0 = ctx.total_activity().l1_accesses;
        t.map_range(&mut ctx, 0, 128, |s| s.iter_mut().for_each(|v| *v += 1));
        let lines = ctx.total_activity().l1_accesses - t0;
        assert_eq!(t.as_slice()[0], 2);
        assert_eq!(lines, 2 * 2, "128 B = 2 lines read + 2 lines written");
    }

    #[test]
    fn fill_range_writes_once() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let mut t: Tracked<u8> = Tracked::zeroed(&mut ctx, 64);
        t.fill_range(&mut ctx, 0, 64, 9);
        assert!(t.as_slice().iter().all(|&v| v == 9));
    }

    #[test]
    fn empty_range_reports_nothing() {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let t: Tracked<u8> = Tracked::zeroed(&mut ctx, 16);
        let before = ctx.total_activity();
        t.read_range(&mut ctx, 0, 0);
        assert_eq!(ctx.total_activity(), before);
    }
}
