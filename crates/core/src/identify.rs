//! The §3.2 PIM-target identification pipeline.
//!
//! A function is a PIM-target *candidate* when it (1) is among the top
//! energy consumers of its workload, (2) spends a significant share of the
//! workload's energy on data movement, (3) is memory-intensive
//! (MPKI > 10), and (4) is itself dominated by data movement. A candidate
//! *passes* when it additionally (5) loses no performance on PIM logic and
//! (6) fits the per-vault area budget.

use std::fmt;

use crate::area::AreaModel;

/// Measured profile of one candidate function within its workload.
#[derive(Debug, Clone)]
pub struct CandidateProfile {
    /// Function name (tag).
    pub name: String,
    /// This function's share of the workload's total energy, `[0, 1]`.
    pub workload_energy_fraction: f64,
    /// Share of the *workload's* energy that is this function's data
    /// movement, `[0, 1]`.
    pub workload_dm_fraction: f64,
    /// The function's LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of the function's own energy that is data movement.
    pub own_dm_fraction: f64,
    /// PIM runtime / CPU runtime (≤ 1 means no performance loss on PIM).
    pub pim_slowdown: f64,
    /// Proposed accelerator footprint, mm².
    pub accel_area_mm2: f64,
}

/// Verdict of the identification pipeline for one candidate.
#[derive(Debug, Clone)]
pub struct Candidacy {
    /// Whether every criterion passed.
    pub passes: bool,
    /// Human-readable pass/fail notes, one per criterion.
    pub criteria: Vec<(String, bool)>,
}

impl fmt::Display for Candidacy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", if self.passes { "PASS" } else { "FAIL" })?;
        for (desc, ok) in &self.criteria {
            writeln!(f, "  [{}] {desc}", if *ok { "ok" } else { "NO" })?;
        }
        Ok(())
    }
}

/// MPKI threshold for "memory-intensive" (§3.2, after prior work).
pub const MPKI_THRESHOLD: f64 = 10.0;

/// Minimum share of workload energy for a function to be "significant".
pub const ENERGY_SIGNIFICANCE: f64 = 0.05;

/// Apply the §3.2 criteria to a candidate profile.
pub fn evaluate(profile: &CandidateProfile, area: &AreaModel) -> Candidacy {
    let mut criteria = Vec::new();
    let c1 = profile.workload_energy_fraction >= ENERGY_SIGNIFICANCE;
    criteria.push((
        format!(
            "consumes a significant share of workload energy ({:.1}% >= {:.0}%)",
            100.0 * profile.workload_energy_fraction,
            100.0 * ENERGY_SIGNIFICANCE
        ),
        c1,
    ));
    let c2 = profile.workload_dm_fraction >= ENERGY_SIGNIFICANCE;
    criteria.push((
        format!(
            "its data movement is a significant share of workload energy ({:.1}%)",
            100.0 * profile.workload_dm_fraction
        ),
        c2,
    ));
    let c3 = profile.mpki > MPKI_THRESHOLD;
    criteria.push((format!("memory-intensive (MPKI {:.1} > 10)", profile.mpki), c3));
    let c4 = profile.own_dm_fraction > 0.5;
    criteria.push((
        format!(
            "data movement dominates the function's energy ({:.1}% > 50%)",
            100.0 * profile.own_dm_fraction
        ),
        c4,
    ));
    let c5 = profile.pim_slowdown <= 1.0;
    criteria.push((
        format!("no performance loss on PIM logic ({:.2}x runtime)", profile.pim_slowdown),
        c5,
    ));
    let c6 = area.fits(profile.accel_area_mm2);
    criteria.push((
        format!(
            "fits the vault area budget ({:.2} mm² of {:.2} mm²)",
            profile.accel_area_mm2, area.vault_budget_mm2
        ),
        c6,
    ));
    Candidacy { passes: c1 && c2 && c3 && c4 && c5 && c6, criteria }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> CandidateProfile {
        CandidateProfile {
            name: "texture_tiling".into(),
            workload_energy_fraction: 0.25,
            workload_dm_fraction: 0.20,
            mpki: 21.4,
            own_dm_fraction: 0.81,
            pim_slowdown: 0.6,
            accel_area_mm2: 0.25,
        }
    }

    #[test]
    fn good_candidate_passes_all_six() {
        let c = evaluate(&good(), &AreaModel::default());
        assert!(c.passes);
        assert_eq!(c.criteria.len(), 6);
        assert!(c.criteria.iter().all(|(_, ok)| *ok));
        assert!(c.to_string().contains("PASS"));
    }

    #[test]
    fn compute_dominated_function_fails() {
        // Conv2D/MatMul-like: most energy goes to computation (§5.2 excludes
        // them for this reason).
        let mut p = good();
        p.name = "conv2d".into();
        p.own_dm_fraction = 0.325;
        let c = evaluate(&p, &AreaModel::default());
        assert!(!c.passes);
    }

    #[test]
    fn low_mpki_function_fails() {
        // Entropy decoding-like: working set fits in cache (§6.2.1).
        let mut p = good();
        p.mpki = 2.0;
        assert!(!evaluate(&p, &AreaModel::default()).passes);
    }

    #[test]
    fn slow_on_pim_fails() {
        let mut p = good();
        p.pim_slowdown = 1.4;
        assert!(!evaluate(&p, &AreaModel::default()).passes);
    }

    #[test]
    fn oversized_accelerator_fails() {
        // Tetris/Neurocube-scale logic (§11) would not fit a vault budget.
        let mut p = good();
        p.accel_area_mm2 = 5.0;
        assert!(!evaluate(&p, &AreaModel::default()).passes);
    }

    #[test]
    fn insignificant_function_fails() {
        let mut p = good();
        p.workload_energy_fraction = 0.004;
        assert!(!evaluate(&p, &AreaModel::default()).passes);
    }
}
