//! Table/series formatting for the figure-regeneration harness.

use pim_energy::{EnergyBreakdown, COMPONENTS};

use crate::offload::RunReport;

/// Format a stacked-energy table (rows = labels, columns = components),
/// with values normalized to the first row's total — the layout of
/// Figures 18–20's left panels.
pub fn energy_table(rows: &[(String, EnergyBreakdown)]) -> String {
    let mut out = String::new();
    let base = rows.first().map(|(_, e)| e.total_pj()).unwrap_or(1.0).max(f64::MIN_POSITIVE);
    out.push_str(&format!("{:<28}", "configuration"));
    for c in COMPONENTS {
        out.push_str(&format!("{:>14}", c.label()));
    }
    out.push_str(&format!("{:>14}\n", "total"));
    for (label, e) in rows {
        out.push_str(&format!("{label:<28}"));
        for c in COMPONENTS {
            out.push_str(&format!("{:>14.4}", e.get(c) / base));
        }
        out.push_str(&format!("{:>14.4}\n", e.total_pj() / base));
    }
    out
}

/// Format a fraction-of-total table (each row sums to 1) — the layout of
/// Figures 1, 6, 7, 10 and 15.
pub fn fraction_table(rows: &[(String, Vec<(String, f64)>)]) -> String {
    let mut out = String::new();
    for (label, parts) in rows {
        let total: f64 = parts.iter().map(|(_, v)| v).sum();
        let total = total.max(f64::MIN_POSITIVE);
        out.push_str(&format!("{label:<20}"));
        for (name, v) in parts {
            out.push_str(&format!("  {name}: {:>5.1}%", 100.0 * v / total));
        }
        out.push('\n');
    }
    out
}

/// Summarize runtime/energy of a mode sweep, normalized to the first run —
/// the right-hand panels of Figures 18 and 20.
pub fn mode_sweep_table(reports: &[RunReport]) -> String {
    let mut out = String::new();
    let Some(base) = reports.first() else {
        return out;
    };
    out.push_str(&format!(
        "{:<20}{:>12}{:>14}{:>12}{:>12}{:>10}\n",
        "mode", "energy", "runtime", "speedup", "DM frac", "MPKI"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<20}{:>12.4}{:>14.4}{:>11.2}x{:>11.1}%{:>10.1}\n",
            r.mode.label(),
            r.energy_vs(base),
            r.runtime_ps as f64 / base.runtime_ps as f64,
            r.speedup_vs(base),
            100.0 * r.energy.data_movement_fraction(),
            r.mpki,
        ));
    }
    out
}

/// Geometric-mean helper for aggregate statements ("on average across all
/// workloads"), which the paper computes over per-workload ratios.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_energy::Component;

    #[test]
    fn energy_table_normalizes_to_first_row() {
        let mut a = EnergyBreakdown::new();
        a.add_pj(Component::Dram, 100.0);
        let mut b = EnergyBreakdown::new();
        b.add_pj(Component::Dram, 50.0);
        let t = energy_table(&[("base".into(), a), ("half".into(), b)]);
        assert!(t.contains("base"));
        assert!(t.contains("0.5000"));
        assert!(t.contains("1.0000"));
    }

    #[test]
    fn fraction_table_sums_to_100() {
        let t = fraction_table(&[(
            "page".into(),
            vec![("tiling".into(), 3.0), ("blit".into(), 1.0)],
        )]);
        assert!(t.contains("75.0%"));
        assert!(t.contains("25.0%"));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn mode_sweep_table_handles_empty() {
        assert!(mode_sweep_table(&[]).is_empty());
    }
}
