//! 2-D convolution lowered to GEMM via im2col (paper §5.1).
//!
//! A convolution layer applies `out_channels` filters of
//! `kh x kw x in_channels` across the input feature map. TensorFlow Mobile
//! lowers it to matrix multiplication: the *im2col* transform lays each
//! receptive field out as a matrix row, after which Conv2D is one GEMM of
//! shape `(out_h*out_w) x (kh*kw*in_c) x out_c`.

use crate::gemm::{gemm_quantized, GemmShape};
use crate::matrix::Matrix;

/// Parameters of one convolution layer (stride 1, valid padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Output channels.
    pub out_c: usize,
}

impl Conv2dParams {
    /// Output height (valid padding, stride 1).
    pub fn out_h(&self) -> usize {
        self.in_h + 1 - self.kh
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w + 1 - self.kw
    }

    /// The GEMM this layer lowers to.
    pub fn gemm_shape(&self) -> GemmShape {
        GemmShape {
            m: self.out_h() * self.out_w(),
            k: self.kh * self.kw * self.in_c,
            n: self.out_c,
        }
    }
}

/// The im2col transform: input `(h, w, c)` HWC → matrix of receptive
/// fields, one row per output position.
pub fn im2col(input: &[u8], p: Conv2dParams) -> Matrix<u8> {
    assert_eq!(input.len(), p.in_h * p.in_w * p.in_c, "input size mismatch");
    let shape = p.gemm_shape();
    let mut m = Matrix::zeroed(shape.m, shape.k);
    let mut row = 0;
    for oy in 0..p.out_h() {
        for ox in 0..p.out_w() {
            let mut col = 0;
            for ky in 0..p.kh {
                for kx in 0..p.kw {
                    for c in 0..p.in_c {
                        let v = input[((oy + ky) * p.in_w + (ox + kx)) * p.in_c + c];
                        m.set(row, col, v);
                        col += 1;
                    }
                }
            }
            row += 1;
        }
    }
    m
}

/// Run a quantized convolution: im2col, then GEMM against the filter
/// matrix (`k x out_c`, one column per filter).
///
/// # Panics
///
/// Panics if filter dimensions disagree with `p`.
pub fn conv2d(input: &[u8], filters: &Matrix<u8>, p: Conv2dParams, in_zp: i32, f_zp: i32) -> Matrix<i32> {
    let shape = p.gemm_shape();
    assert_eq!(filters.rows(), shape.k, "filter depth mismatch");
    assert_eq!(filters.cols(), shape.n, "filter count mismatch");
    let cols = im2col(input, p);
    gemm_quantized(&cols, filters, in_zp, f_zp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let p = Conv2dParams { in_h: 5, in_w: 6, in_c: 3, kh: 3, kw: 3, out_c: 8 };
        assert_eq!(p.out_h(), 3);
        assert_eq!(p.out_w(), 4);
        let s = p.gemm_shape();
        assert_eq!((s.m, s.k, s.n), (12, 27, 8));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel, single channel, single filter of weight 1.
        let p = Conv2dParams { in_h: 3, in_w: 3, in_c: 1, kh: 1, kw: 1, out_c: 1 };
        let input: Vec<u8> = (1..=9).collect();
        let filters = Matrix::from_vec(1, 1, vec![1u8]);
        let out = conv2d(&input, &filters, p, 0, 0);
        assert_eq!(out.data(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn box_filter_sums_receptive_field() {
        // 2x2 all-ones kernel over a known input.
        let p = Conv2dParams { in_h: 2, in_w: 2, in_c: 1, kh: 2, kw: 2, out_c: 1 };
        let input = vec![1u8, 2, 3, 4];
        let filters = Matrix::from_vec(4, 1, vec![1u8; 4]);
        let out = conv2d(&input, &filters, p, 0, 0);
        assert_eq!(out.data(), &[10]);
    }

    #[test]
    fn multichannel_im2col_interleaves_channels() {
        let p = Conv2dParams { in_h: 1, in_w: 2, in_c: 2, kh: 1, kw: 2, out_c: 1 };
        // HWC input: (x0: c0=1 c1=2), (x1: c0=3 c1=4).
        let m = im2col(&[1, 2, 3, 4], p);
        assert_eq!(m.row(0), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let p = Conv2dParams { in_h: 2, in_w: 2, in_c: 1, kh: 1, kw: 1, out_c: 1 };
        im2col(&[0u8; 3], p);
    }
}
