//! Dense row-major matrices for the quantized-GEMM pipeline.

use pim_core::rng::SplitMix64;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// A zeroed matrix.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::default(); rows * cols] }
    }
}

impl<T: Copy> Matrix<T> {
    /// Build from parts.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl Matrix<f32> {
    /// Deterministic synthetic activations/weights in `[-scale, scale]`.
    pub fn synthetic(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols)
            .map(|_| (rng.next_f64() as f32 * 2.0 - 1.0) * scale)
            .collect();
        Self { rows, cols, data }
    }
}

impl Matrix<u8> {
    /// Deterministic synthetic quantized data.
    pub fn synthetic_u8(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols).map(|_| rng.next_u8()).collect();
        Self { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut m: Matrix<i32> = Matrix::zeroed(3, 4);
        m.set(2, 3, 7);
        assert_eq!(m.get(2, 3), 7);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.row(2), &[0, 0, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        Matrix::<u8>::zeroed(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bad_from_vec_panics() {
        Matrix::from_vec(2, 2, vec![1u8; 3]);
    }

    #[test]
    fn synthetic_is_deterministic_and_bounded() {
        let a = Matrix::synthetic(8, 8, 2.0, 1);
        let b = Matrix::synthetic(8, 8, 2.0, 1);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 2.0));
    }
}
