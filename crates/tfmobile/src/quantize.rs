//! Quantization: 32-bit → 8-bit conversion around every Conv2D (paper §5.3).
//!
//! TensorFlow Mobile quantizes the input matrix before Conv2D and
//! *re-quantizes* the 32-bit result matrix after it (Figure 8). Each pass
//! scans the matrix twice — once to find min/max, once to convert — which
//! is why quantization is data-movement-bound (73.5% of its energy on
//! ResNet, §5.3).

use pim_core::{Kernel, OpMix, SimContext, Tracked};

use crate::matrix::Matrix;

/// Affine quantization parameters: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale factor.
    pub scale: f32,
    /// Zero point in quantized space.
    pub zero_point: i32,
}

impl QuantParams {
    /// Parameters mapping `[min, max]` onto `0..=255`.
    pub fn from_range(min: f32, max: f32) -> Self {
        let (min, max) = (min.min(0.0), max.max(0.0)); // range must include 0
        let scale = if max > min { (max - min) / 255.0 } else { 1.0 };
        let zero_point = (-min / scale).round().clamp(0.0, 255.0) as i32;
        Self { scale, zero_point }
    }
}

/// Quantize an f32 matrix to u8, returning the data and its parameters.
pub fn quantize_f32(m: &Matrix<f32>) -> (Matrix<u8>, QuantParams) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in m.data() {
        min = min.min(v);
        max = max.max(v);
    }
    if m.is_empty() {
        return (Matrix::zeroed(m.rows(), m.cols()), QuantParams { scale: 1.0, zero_point: 0 });
    }
    let p = QuantParams::from_range(min, max);
    let q = m
        .data()
        .iter()
        .map(|&v| ((v / p.scale).round() as i32 + p.zero_point).clamp(0, 255) as u8)
        .collect();
    (Matrix::from_vec(m.rows(), m.cols(), q), p)
}

/// Recover approximate reals from quantized data.
pub fn dequantize(m: &Matrix<u8>, p: QuantParams) -> Matrix<f32> {
    let data = m.data().iter().map(|&q| p.scale * (q as i32 - p.zero_point) as f32).collect();
    Matrix::from_vec(m.rows(), m.cols(), data)
}

/// Re-quantize a 32-bit GEMM result down to u8 (the §5.3 "re-quantization").
///
/// Scans for min/max, then converts — the same double pass TensorFlow
/// performs after every Conv2D.
pub fn requantize_i32(m: &Matrix<i32>) -> (Matrix<u8>, f32) {
    let mut min = i32::MAX;
    let mut max = i32::MIN;
    for &v in m.data() {
        min = min.min(v);
        max = max.max(v);
    }
    if m.is_empty() {
        return (Matrix::zeroed(m.rows(), m.cols()), 1.0);
    }
    let range = (max as i64 - min as i64).max(1) as f32;
    let scale = range / 255.0;
    let q = m
        .data()
        .iter()
        .map(|&v| (((v as i64 - min as i64) as f32 / scale).round() as i64).clamp(0, 255) as u8)
        .collect();
    (Matrix::from_vec(m.rows(), m.cols(), q), scale)
}

/// Traffic/op model of one 32-bit quantization pass over `elems` elements:
/// two full scans (min/max, then convert) at 4 B/element, with one narrow
/// write (§5.3, Figure 8's steps 1–2).
pub fn quantize_tracked(ctx: &mut SimContext, elems: usize) {
    let buf32: Tracked<i32> = Tracked::zeroed(ctx, elems);
    let buf8: Tracked<u8> = Tracked::zeroed(ctx, elems);
    // Pass 1: min/max scan.
    buf32.touch_range(ctx, 0, elems, pim_core::AccessKind::Read);
    ctx.ops(OpMix { simd: elems as u64 / 4, ..OpMix::default() });
    // Pass 2: read again, convert, write 8-bit.
    buf32.touch_range(ctx, 0, elems, pim_core::AccessKind::Read);
    buf8.touch_range(ctx, 0, elems, pim_core::AccessKind::Write);
    ctx.ops(OpMix { simd: elems as u64 / 4, mul: elems as u64 / 8, scalar: elems as u64 / 8, ..OpMix::default() });
}

/// The §9 quantization microbenchmark: post-Conv2D re-quantization over
/// GEMM-result-sized matrices.
#[derive(Debug)]
pub struct QuantizationKernel {
    shapes: Vec<(usize, usize)>,
    /// Quantized outputs of the last run (one checksum per matrix).
    pub checksums: Vec<u64>,
}

impl QuantizationKernel {
    /// Re-quantize result matrices of the given `(rows, cols)` shapes.
    pub fn new(shapes: Vec<(usize, usize)>) -> Self {
        Self { shapes, checksums: Vec::new() }
    }

    /// Result-matrix sizes reflecting real GEMM outputs (§9).
    pub fn paper_input() -> Self {
        Self::new(vec![(784, 64), (784, 128), (196, 256), (196, 512)])
    }
}

impl Kernel for QuantizationKernel {
    fn name(&self) -> &'static str {
        "quantization"
    }

    fn working_set_bytes(&self) -> u64 {
        self.shapes.iter().map(|&(r, c)| (r * c * 4) as u64).sum()
    }

    fn run(&mut self, ctx: &mut SimContext) {
        self.checksums.clear();
        let shapes = self.shapes.clone();
        ctx.scoped("quantization", |ctx| {
            for (i, &(r, c)) in shapes.iter().enumerate() {
                if ctx.tracer().enabled() {
                    ctx.mark(format!("quantize {r}x{c}"));
                }
                // Real conversion on synthetic data...
                let m = Matrix::<f32>::synthetic(r, c, 8.0, i as u64 + 1);
                let scaled: Vec<i32> =
                    m.data().iter().map(|&v| (v * 1000.0) as i32).collect();
                let m32 = Matrix::from_vec(r, c, scaled);
                let (q, _) = requantize_i32(&m32);
                self.checksums
                    .push(q.data().iter().fold(0u64, |a, &b| a.rotate_left(7) ^ b as u64));
                // ...and the corresponding traffic.
                quantize_tracked(ctx, r * c);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_bounds_error_by_scale() {
        let m = Matrix::synthetic(16, 16, 4.0, 3);
        let (q, p) = quantize_f32(&m);
        let back = dequantize(&q, p);
        for (a, b) in m.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= p.scale, "{a} vs {b} (scale {})", p.scale);
        }
    }

    #[test]
    fn quant_params_cover_zero() {
        let p = QuantParams::from_range(1.0, 5.0); // min clamped to 0
        assert_eq!(p.zero_point, 0);
        let p = QuantParams::from_range(-5.0, -1.0);
        assert_eq!(p.zero_point, 255);
    }

    #[test]
    fn requantize_hits_full_u8_range() {
        let m = Matrix::from_vec(1, 4, vec![-1000, 0, 500, 1000]);
        let (q, _) = requantize_i32(&m);
        assert_eq!(q.data()[0], 0);
        assert_eq!(q.data()[3], 255);
    }

    #[test]
    fn requantize_constant_matrix_is_stable() {
        let m = Matrix::from_vec(2, 2, vec![42; 4]);
        let (q, _) = requantize_i32(&m);
        assert!(q.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn tracked_pass_moves_8_bytes_per_element_plus_output() {
        let mut ctx = pim_core::SimContext::cpu_only(pim_core::Platform::baseline());
        quantize_tracked(&mut ctx, 1 << 16);
        let act = ctx.total_activity();
        // Two 4 B reads per element + 1 B write, at line granularity.
        let expected_lines = (2 * 4 * (1 << 16) + (1 << 16)) / 64;
        assert!((act.l1_accesses as i64 - expected_lines as i64).abs() < 64);
    }

    #[test]
    fn kernel_is_memory_bound_and_pim_friendly() {
        use pim_core::{ExecutionMode, OffloadEngine};
        let eng = OffloadEngine::new();
        let mut k = QuantizationKernel::paper_input();
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        assert!(cpu.mpki > 10.0, "mpki {}", cpu.mpki);
        assert!(cpu.energy.data_movement_fraction() > 0.6);
        assert!(pim.energy_vs(&cpu) < 0.7);
    }
}
