//! gemmlowp-style matrix packing and unpacking (paper §5.3).
//!
//! gemmlowp executes its inner GEMM kernel on small fixed-size chunks. To
//! make the chunks cache-friendly it *packs* them: the LHS is reordered
//! into row blocks, the RHS into column blocks, and the result is
//! *unpacked* back to row-major order. The RHS is re-packed once per LHS
//! row-block pass, which is why packing's traffic — and its share of
//! system energy (up to 40%, Figure 6) — far exceeds one pass over the
//! matrices.

use pim_core::{Kernel, OpMix, SimContext, Tracked};

use crate::matrix::Matrix;

/// Block edge of the packed layout (gemmlowp kernels use 4–12; 4 matches
/// the paper's 4-wide SIMD).
pub const PACK_BLOCK: usize = 4;

/// Pack the LHS into row blocks of [`PACK_BLOCK`] rows: block-major, then
/// column-major within the block, so the kernel streams it linearly.
///
/// Rows are zero-padded up to a multiple of the block size.
pub fn pack_lhs(m: &Matrix<u8>) -> Vec<u8> {
    let (rows, cols) = (m.rows(), m.cols());
    let blocks = rows.div_ceil(PACK_BLOCK);
    let mut out = vec![0u8; blocks * PACK_BLOCK * cols];
    let data = m.data();
    let mut w = 0;
    for b in 0..blocks {
        let r0 = b * PACK_BLOCK;
        let live = (rows - r0).min(PACK_BLOCK);
        for c in 0..cols {
            for r in 0..live {
                out[w + r] = data[(r0 + r) * cols + c];
            }
            // Padding rows stay at the buffer's zero initialization.
            w += PACK_BLOCK;
        }
    }
    out
}

/// Pack the RHS into column blocks of [`PACK_BLOCK`] columns.
///
/// Columns are zero-padded up to a multiple of the block size.
pub fn pack_rhs(m: &Matrix<u8>) -> Vec<u8> {
    let (rows, cols) = (m.rows(), m.cols());
    let blocks = cols.div_ceil(PACK_BLOCK);
    let mut out = vec![0u8; blocks * PACK_BLOCK * rows];
    let mut w = 0;
    for b in 0..blocks {
        let c0 = b * PACK_BLOCK;
        let live = (cols - c0).min(PACK_BLOCK);
        for r in 0..rows {
            // The block's columns are contiguous within the source row.
            out[w..w + live].copy_from_slice(&m.row(r)[c0..c0 + live]);
            w += PACK_BLOCK;
        }
    }
    out
}

/// Unpack a block-ordered result back to a row-major matrix.
///
/// `packed` holds `PACK_BLOCK`×`PACK_BLOCK` result tiles in row-block,
/// column-block order, exactly as the GEMM kernel produces them.
pub fn unpack_result(packed: &[i32], rows: usize, cols: usize) -> Matrix<i32> {
    let row_blocks = rows.div_ceil(PACK_BLOCK);
    let col_blocks = cols.div_ceil(PACK_BLOCK);
    assert_eq!(
        packed.len(),
        row_blocks * col_blocks * PACK_BLOCK * PACK_BLOCK,
        "packed result size mismatch"
    );
    let mut m = Matrix::zeroed(rows, cols);
    let data = m.data_mut();
    let mut rdr = 0;
    for rb in 0..row_blocks {
        for cb in 0..col_blocks {
            let c0 = cb * PACK_BLOCK;
            let live = (cols.saturating_sub(c0)).min(PACK_BLOCK);
            for r in 0..PACK_BLOCK {
                let rr = rb * PACK_BLOCK + r;
                if rr < rows && live > 0 {
                    // A tile row is contiguous in both the tile and the
                    // destination row.
                    let dst = rr * cols + c0;
                    data[dst..dst + live].copy_from_slice(&packed[rdr..rdr + live]);
                }
                rdr += PACK_BLOCK;
            }
        }
    }
    m
}

/// Traffic/op model of packing for one GEMM of shape `m x k x n`:
/// one pass over the LHS, `ceil(m / row_block)` passes over the RHS (the
/// gemmlowp re-pack), plus the unpack pass over the 32-bit result.
///
/// `row_block` is the LHS rows that fit the L2 working set per pass
/// (gemmlowp's cache-blocking parameter; 64 is representative).
pub fn pack_tracked(ctx: &mut SimContext, m: usize, k: usize, n: usize, row_block: usize) {
    let lhs: Tracked<u8> = Tracked::zeroed(ctx, m * k);
    let lhs_packed: Tracked<u8> = Tracked::zeroed(ctx, m * k);
    let rhs: Tracked<u8> = Tracked::zeroed(ctx, k * n);
    let rhs_packed: Tracked<u8> = Tracked::zeroed(ctx, k * n);

    // LHS: one reordering pass.
    lhs.touch_range(ctx, 0, m * k, pim_core::AccessKind::Read);
    lhs_packed.touch_range(ctx, 0, m * k, pim_core::AccessKind::Write);
    ctx.ops(OpMix { scalar: (m * k / 8) as u64, simd: (m * k / 16) as u64, ..OpMix::default() });

    // RHS: re-packed once per row-block pass.
    let passes = m.div_ceil(row_block.max(1));
    for _ in 0..passes {
        rhs.touch_range(ctx, 0, k * n, pim_core::AccessKind::Read);
        rhs_packed.touch_range(ctx, 0, k * n, pim_core::AccessKind::Write);
        ctx.ops(OpMix { scalar: (k * n / 8) as u64, simd: (k * n / 16) as u64, ..OpMix::default() });
    }
}

/// Traffic/op model of unpacking the 32-bit result (one reordering pass).
pub fn unpack_tracked(ctx: &mut SimContext, m: usize, n: usize) {
    let packed: Tracked<i32> = Tracked::zeroed(ctx, m * n);
    let out: Tracked<i32> = Tracked::zeroed(ctx, m * n);
    packed.touch_range(ctx, 0, m * n, pim_core::AccessKind::Read);
    out.touch_range(ctx, 0, m * n, pim_core::AccessKind::Write);
    ctx.ops(OpMix { scalar: (m * n / 8) as u64, simd: (m * n / 16) as u64, ..OpMix::default() });
}

/// The §9 packing microbenchmark: gemmlowp with multiplication and
/// unpacking disabled — packing alone, over representative GEMM shapes.
#[derive(Debug)]
pub struct PackingKernel {
    shapes: Vec<(usize, usize, usize)>,
}

impl PackingKernel {
    /// Pack matrices for the given `(m, k, n)` GEMM shapes.
    pub fn new(shapes: Vec<(usize, usize, usize)>) -> Self {
        Self { shapes }
    }

    /// Representative convolution GEMM shapes (§9).
    pub fn paper_input() -> Self {
        Self::new(vec![(784, 288, 64), (784, 576, 128), (196, 1152, 256), (196, 2304, 512)])
    }
}

impl Kernel for PackingKernel {
    fn name(&self) -> &'static str {
        "packing"
    }

    fn working_set_bytes(&self) -> u64 {
        self.shapes.iter().map(|&(m, k, n)| (m * k + k * n) as u64).sum()
    }

    fn run(&mut self, ctx: &mut SimContext) {
        let shapes = self.shapes.clone();
        ctx.scoped("packing", |ctx| {
            for (m, k, n) in shapes {
                if ctx.tracer().enabled() {
                    ctx.mark(format!("pack {m}x{k}x{n}"));
                }
                pack_tracked(ctx, m, k, n, 128);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_lhs_is_block_column_major() {
        // 2x3 matrix, block 4: one padded block.
        let m = Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let p = pack_lhs(&m);
        // Column-major within the block, rows padded to 4.
        assert_eq!(p, vec![1, 4, 0, 0, 2, 5, 0, 0, 3, 6, 0, 0]);
    }

    #[test]
    fn pack_rhs_is_block_row_major() {
        let m = Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let p = pack_rhs(&m);
        // One column block of width 4 (padded), row-major within.
        assert_eq!(p, vec![1, 2, 3, 0, 4, 5, 6, 0]);
    }

    #[test]
    fn unpack_restores_row_major_order() {
        // One 4x4 tile holding 0..16 for a 3x2 result.
        let tile: Vec<i32> = (0..16).collect();
        let m = unpack_result(&tile, 3, 2);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 0), 4);
        assert_eq!(m.get(2, 1), 9);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn unpack_checks_size() {
        unpack_result(&[0; 15], 4, 4);
    }

    #[test]
    fn repacking_traffic_scales_with_row_blocks() {
        use pim_core::{Platform, SimContext};
        let mut a = SimContext::cpu_only(Platform::baseline());
        pack_tracked(&mut a, 128, 256, 256, 128); // 1 pass
        let mut b = SimContext::cpu_only(Platform::baseline());
        pack_tracked(&mut b, 512, 256, 256, 128); // 4 passes
        let ta = a.total_activity().l1_accesses;
        let tb = b.total_activity().l1_accesses;
        assert!(tb as f64 > 2.5 * ta as f64, "{tb} vs {ta}");
    }

    #[test]
    fn kernel_passes_identification_criteria() {
        use pim_core::{ExecutionMode, OffloadEngine};
        let eng = OffloadEngine::new();
        let mut k = PackingKernel::paper_input();
        let cpu = eng.run(&mut k, ExecutionMode::CpuOnly);
        let pim = eng.run(&mut k, ExecutionMode::PimCore);
        assert!(cpu.mpki > 10.0);
        assert!(cpu.energy.data_movement_fraction() > 0.7, "packing is DM-bound");
        assert!(pim.energy_vs(&cpu) < 0.7);
        assert!(pim.speedup_vs(&cpu) > 1.0);
    }
}
