//! Low-precision GEMM: the gemmlowp inner kernel (paper §5.1/§5.3).
//!
//! Multiplies u8 matrices with zero-point offsets, accumulating into i32
//! (two 8-bit operands produce 16 bits; accumulation needs 32). On NEON-
//! class SIMD the kernel retires 16 8-bit MACs per instruction, which is
//! why GEMM's energy is computation-dominated (67.5%, §5.2) even though
//! the matrices are large — and why the paper leaves Conv2D/MatMul on the
//! CPU and offloads only packing and quantization.

use pim_core::{OpMix, SimContext, Tracked};

use crate::matrix::Matrix;

/// The shape of one GEMM: `result[m x n] = lhs[m x k] * rhs[k x n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Rows of the LHS/result.
    pub m: usize,
    /// The shared (depth) dimension.
    pub k: usize,
    /// Columns of the RHS/result.
    pub n: usize,
}

impl GemmShape {
    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        (self.m * self.k * self.n) as u64
    }

    /// Bytes of the three matrices (u8 inputs, i32 result).
    pub fn bytes(&self) -> u64 {
        (self.m * self.k + self.k * self.n + 4 * self.m * self.n) as u64
    }
}

/// Quantized GEMM: `out = (lhs - lhs_zp) * (rhs - rhs_zp)`, i32 result.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn gemm_quantized(lhs: &Matrix<u8>, rhs: &Matrix<u8>, lhs_zp: i32, rhs_zp: i32) -> Matrix<i32> {
    assert_eq!(lhs.cols(), rhs.rows(), "inner dimension mismatch");
    let (m, k, n) = (lhs.rows(), lhs.cols(), rhs.cols());
    let mut out = Matrix::zeroed(m, n);
    let rdata = rhs.data();
    let odata = out.data_mut();
    for r in 0..m {
        let lrow = lhs.row(r);
        let orow = &mut odata[r * n..(r + 1) * n];
        for (c, o) in orow.iter_mut().enumerate() {
            let mut acc = 0i32;
            for (d, &l) in lrow.iter().enumerate().take(k) {
                acc += (l as i32 - lhs_zp) * (rdata[d * n + c] as i32 - rhs_zp);
            }
            *o = acc;
        }
    }
    out
}

/// Traffic/op model of executing one packed GEMM on an engine.
///
/// The packed operands stream once (cache blocking keeps reuse on-chip);
/// the result streams out at 32 bits. MACs retire 16 lanes per SIMD op.
pub fn gemm_tracked(ctx: &mut SimContext, shape: GemmShape) {
    let lhs: Tracked<u8> = Tracked::zeroed(ctx, shape.m * shape.k);
    let rhs: Tracked<u8> = Tracked::zeroed(ctx, shape.k * shape.n);
    let out: Tracked<i32> = Tracked::zeroed(ctx, shape.m * shape.n);
    lhs.touch_range(ctx, 0, shape.m * shape.k, pim_core::AccessKind::Read);
    rhs.touch_range(ctx, 0, shape.k * shape.n, pim_core::AccessKind::Read);
    out.touch_range(ctx, 0, shape.m * shape.n, pim_core::AccessKind::Write);
    // NEON-class u8 kernels retire ~24 MACs per instruction slot once
    // unrolled, and TensorFlow Mobile runs the kernel on all four SoC
    // cores; energy is charged for every op, time for the critical path.
    ctx.ops_parallel(
        OpMix { simd: shape.macs() / 24, scalar: shape.macs() / 96, ..OpMix::default() },
        4,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{dequantize, quantize_f32, QuantParams};

    #[test]
    fn identity_multiplication() {
        // lhs * I == lhs (with zero points 0).
        let lhs = Matrix::from_vec(2, 2, vec![1u8, 2, 3, 4]);
        let eye = Matrix::from_vec(2, 2, vec![1u8, 0, 0, 1]);
        let out = gemm_quantized(&lhs, &eye, 0, 0);
        assert_eq!(out.data(), &[1, 2, 3, 4]);
    }

    #[test]
    fn zero_points_shift_operands() {
        // (l - 1) * (r - 1) for all-2 matrices = 1 * 1 * k.
        let lhs = Matrix::from_vec(2, 3, vec![2u8; 6]);
        let rhs = Matrix::from_vec(3, 2, vec![2u8; 6]);
        let out = gemm_quantized(&lhs, &rhs, 1, 1);
        assert!(out.data().iter().all(|&v| v == 3));
    }

    #[test]
    fn matches_float_reference_within_quant_error() {
        let a = Matrix::synthetic(6, 5, 1.0, 1);
        let b = Matrix::synthetic(5, 4, 1.0, 2);
        // Float reference.
        let mut reference = Matrix::<f32>::zeroed(6, 4);
        for r in 0..6 {
            for c in 0..4 {
                let mut acc = 0.0;
                for d in 0..5 {
                    acc += a.get(r, d) * b.get(d, c);
                }
                reference.set(r, c, acc);
            }
        }
        // Quantized path.
        let (qa, pa) = quantize_f32(&a);
        let (qb, pb) = quantize_f32(&b);
        let out = gemm_quantized(&qa, &qb, pa.zero_point, pb.zero_point);
        let scale = pa.scale * pb.scale;
        let deq = dequantize(
            &Matrix::from_vec(6, 4, out.data().iter().map(|&v| v.clamp(0, 255) as u8).collect()),
            QuantParams { scale: 1.0, zero_point: 0 },
        );
        let _ = deq; // full dequant path exercised above; compare raw accums:
        for r in 0..6 {
            for c in 0..4 {
                let approx = out.get(r, c) as f32 * scale;
                let exact = reference.get(r, c);
                assert!(
                    (approx - exact).abs() < 0.15,
                    "({r},{c}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<u8>::zeroed(2, 3);
        let b = Matrix::<u8>::zeroed(2, 3);
        gemm_quantized(&a, &b, 0, 0);
    }

    #[test]
    fn tracked_gemm_is_compute_dominated() {
        // §5.2: 67.5% of Conv2D/MatMul energy is computation.
        let mut ctx = pim_core::SimContext::cpu_only(pim_core::Platform::baseline());
        gemm_tracked(&mut ctx, GemmShape { m: 196, k: 1152, n: 256 });
        let e = ctx.total_energy();
        assert!(
            e.compute_pj() > e.data_movement_pj(),
            "compute {} vs dm {}",
            e.compute_pj(),
            e.data_movement_pj()
        );
    }

    #[test]
    fn shape_arithmetic() {
        let s = GemmShape { m: 2, k: 3, n: 4 };
        assert_eq!(s.macs(), 24);
        assert_eq!(s.bytes(), 6 + 12 + 32);
    }
}
