//! The four evaluated networks (paper §3.1): VGG-19, ResNet-v2-152,
//! Inception-ResNet-v2, Residual-GRU.
//!
//! For the energy/traffic study each layer is its GEMM lowering
//! ([`crate::gemm::GemmShape`]) plus the size of the activation tensor that
//! is quantized before the layer. VGG-19 and ResNet-v2-152 follow their
//! published architectures exactly; Inception-ResNet-v2 and Residual-GRU
//! are built from their blocks' published shapes (the paper does not list
//! per-layer tables, so the block structure is reproduced from the
//! original architecture papers). `scaled()` shrinks spatial dimensions
//! for fast tests; benches run full scale.

use crate::gemm::GemmShape;

/// One weight layer: the GEMM it lowers to and the activations quantized
/// before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layer {
    /// GEMM shape after im2col.
    pub gemm: GemmShape,
    /// Elements of the (pre-im2col) input activation tensor.
    pub quant_in_elems: usize,
}

impl Layer {
    fn conv(hw: usize, in_c: usize, k_edge: usize, out_c: usize) -> Self {
        Layer {
            gemm: GemmShape { m: hw * hw, k: k_edge * k_edge * in_c, n: out_c },
            quant_in_elems: hw * hw * in_c,
        }
    }

    fn fc(in_d: usize, out_d: usize) -> Self {
        Layer {
            gemm: GemmShape { m: 1, k: in_d, n: out_d },
            quant_in_elems: in_d,
        }
    }
}

/// Which network (Figure 6's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// VGG-19 (Simonyan & Zisserman): 16 convs + 3 FC; few, huge GEMMs.
    Vgg19,
    /// ResNet-v2-152 (He et al.): 156 Conv2D operations (§5.3).
    ResNetV2152,
    /// Inception-ResNet-v2 (Szegedy et al.).
    InceptionResNetV2,
    /// Residual-GRU image compression (Toderici et al.).
    ResidualGru,
}

impl NetworkKind {
    /// All four, in the paper's Figure 6 order.
    pub const ALL: [NetworkKind; 4] = [
        NetworkKind::ResNetV2152,
        NetworkKind::Vgg19,
        NetworkKind::ResidualGru,
        NetworkKind::InceptionResNetV2,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::Vgg19 => "VGG-19",
            NetworkKind::ResNetV2152 => "ResNet-V2",
            NetworkKind::InceptionResNetV2 => "Inception-ResNet",
            NetworkKind::ResidualGru => "Residual-GRU",
        }
    }
}

/// A network: an ordered list of weight layers.
#[derive(Debug, Clone)]
pub struct Network {
    kind: NetworkKind,
    layers: Vec<Layer>,
}

impl Network {
    /// Build a network at full published scale.
    pub fn new(kind: NetworkKind) -> Self {
        Self::scaled(kind, 1)
    }

    /// Build with spatial dimensions divided by `shrink` (≥ 1). Channel
    /// structure and layer count — which drive the paper's quantization-
    /// overhead trend — are preserved.
    pub fn scaled(kind: NetworkKind, shrink: usize) -> Self {
        let s = shrink.max(1);
        let layers = match kind {
            NetworkKind::Vgg19 => vgg19(s),
            NetworkKind::ResNetV2152 => resnet152(s),
            NetworkKind::InceptionResNetV2 => inception_resnet(s),
            NetworkKind::ResidualGru => residual_gru(s),
        };
        Self { kind, layers }
    }

    /// Which network this is.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of Conv2D/MatMul operations.
    pub fn gemm_count(&self) -> usize {
        self.layers.len()
    }

    /// Total multiply-accumulates.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.gemm.macs()).sum()
    }
}

fn d(v: usize, s: usize) -> usize {
    (v / s).max(1)
}

fn vgg19(s: usize) -> Vec<Layer> {
    let mut l = Vec::new();
    let cfg: &[(usize, usize, &[usize])] = &[
        (224, 3, &[64, 64]),
        (112, 64, &[128, 128]),
        (56, 128, &[256, 256, 256, 256]),
        (28, 256, &[512, 512, 512, 512]),
        (14, 512, &[512, 512, 512, 512]),
    ];
    for &(hw, mut in_c, outs) in cfg {
        for &out_c in outs {
            l.push(Layer::conv(d(hw, s), in_c, 3, out_c));
            in_c = out_c;
        }
    }
    l.push(Layer::fc(d(7, s) * d(7, s) * 512, 4096));
    l.push(Layer::fc(4096, 4096));
    l.push(Layer::fc(4096, 1000));
    l
}

fn resnet152(s: usize) -> Vec<Layer> {
    let mut l = vec![Layer::conv(d(112, s), 3, 7, 64)];
    // Stages: (spatial, bottleneck width, output width, blocks).
    let stages: &[(usize, usize, usize, usize)] = &[
        (56, 64, 256, 3),
        (28, 128, 512, 8),
        (14, 256, 1024, 36),
        (7, 512, 2048, 3),
    ];
    let mut in_c = 64;
    for &(hw, mid, out, blocks) in stages {
        // Projection shortcut on the first block of each stage.
        l.push(Layer::conv(d(hw, s), in_c, 1, out));
        for b in 0..blocks {
            let c_in = if b == 0 { in_c } else { out };
            l.push(Layer::conv(d(hw, s), c_in, 1, mid));
            l.push(Layer::conv(d(hw, s), mid, 3, mid));
            l.push(Layer::conv(d(hw, s), mid, 1, out));
        }
        in_c = out;
    }
    l.push(Layer::fc(2048, 1000));
    l
}

fn inception_resnet(s: usize) -> Vec<Layer> {
    // Stem.
    let mut l = vec![
        Layer::conv(d(149, s), 3, 3, 32),
        Layer::conv(d(147, s), 32, 3, 32),
        Layer::conv(d(147, s), 32, 3, 64),
        Layer::conv(d(73, s), 64, 1, 80),
        Layer::conv(d(71, s), 80, 3, 192),
        Layer::conv(d(35, s), 192, 1, 320),
    ];
    // 10x Inception-ResNet-A (3 branches: 1, 2, 3 convs + merge).
    for _ in 0..10 {
        l.push(Layer::conv(d(35, s), 320, 1, 32));
        l.push(Layer::conv(d(35, s), 320, 1, 32));
        l.push(Layer::conv(d(35, s), 32, 3, 32));
        l.push(Layer::conv(d(35, s), 320, 1, 32));
        l.push(Layer::conv(d(35, s), 32, 3, 48));
        l.push(Layer::conv(d(35, s), 48, 3, 64));
        l.push(Layer::conv(d(35, s), 128, 1, 320));
    }
    // 20x Inception-ResNet-B at 17x17.
    for _ in 0..20 {
        l.push(Layer::conv(d(17, s), 1088, 1, 192));
        l.push(Layer::conv(d(17, s), 1088, 1, 128));
        l.push(Layer::conv(d(17, s), 128, 7, 192)); // 1x7+7x1 folded
        l.push(Layer::conv(d(17, s), 384, 1, 1088));
    }
    // 10x Inception-ResNet-C at 8x8.
    for _ in 0..10 {
        l.push(Layer::conv(d(8, s), 2080, 1, 192));
        l.push(Layer::conv(d(8, s), 192, 3, 256)); // 1x3+3x1 folded
        l.push(Layer::conv(d(8, s), 448, 1, 2080));
    }
    l.push(Layer::fc(1536, 1000));
    l
}

fn residual_gru(s: usize) -> Vec<Layer> {
    // Full-resolution image compression (Toderici et al.): an encoder of
    // conv-GRUs and a decoder of conv-GRUs run for 16 refinement
    // iterations on 32x32 patches. Each GRU cell lowers to two GEMMs
    // (update/reset gates fused, candidate separately).
    let mut l = Vec::new();
    l.push(Layer::conv(d(32, s), 3, 3, 64)); // encoder input conv
    for _ in 0..16 {
        // Encoder GRUs at 16, 8, 4; decoder at 4, 8, 16, 32.
        for &(hw, c) in &[(16, 256), (8, 512), (4, 512)] {
            l.push(Layer::conv(d(hw, s), c, 3, c));
            l.push(Layer::conv(d(hw, s), c, 1, c));
        }
        for &(hw, c) in &[(4, 512), (8, 512), (16, 256), (32, 128)] {
            l.push(Layer::conv(d(hw, s), c, 3, c));
            l.push(Layer::conv(d(hw, s), c, 1, c));
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg19_has_19_weight_layers() {
        // §5.3: "VGG requires only 19 Conv2D operations".
        assert_eq!(Network::new(NetworkKind::Vgg19).gemm_count(), 19);
    }

    #[test]
    fn resnet152_has_156_convs() {
        // §5.3: "ResNet requires 156 Conv2D operations".
        assert_eq!(Network::new(NetworkKind::ResNetV2152).gemm_count(), 156);
    }

    #[test]
    fn deeper_nets_have_more_but_smaller_gemms() {
        let vgg = Network::new(NetworkKind::Vgg19);
        let res = Network::new(NetworkKind::ResNetV2152);
        assert!(res.gemm_count() > 8 * vgg.gemm_count());
        let avg_vgg = vgg.total_macs() / vgg.gemm_count() as u64;
        let avg_res = res.total_macs() / res.gemm_count() as u64;
        assert!(avg_vgg > 10 * avg_res);
    }

    #[test]
    fn scaling_shrinks_work_not_depth() {
        let full = Network::new(NetworkKind::InceptionResNetV2);
        let small = Network::scaled(NetworkKind::InceptionResNetV2, 4);
        assert_eq!(full.gemm_count(), small.gemm_count());
        assert!(small.total_macs() < full.total_macs() / 4);
    }

    #[test]
    fn vgg_total_macs_matches_published_order() {
        // Published VGG-19 ≈ 19.6 GMACs.
        let macs = Network::new(NetworkKind::Vgg19).total_macs();
        assert!((15_000_000_000..25_000_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn all_layers_have_positive_dims() {
        for kind in NetworkKind::ALL {
            let n = Network::scaled(kind, 4);
            for l in n.layers() {
                assert!(l.gemm.m > 0 && l.gemm.k > 0 && l.gemm.n > 0);
                assert!(l.quant_in_elems > 0);
            }
        }
    }
}
