//! TensorFlow Mobile workload models (paper §5).
//!
//! Inference on consumer devices runs quantized GEMM through the gemmlowp
//! library. Around the GEMM kernel sit the two PIM targets the paper
//! identifies:
//!
//! * **packing/unpacking** ([`pack`]) — reordering matrix chunks into the
//!   kernel's cache-friendly layout and back (up to 40% of system energy),
//! * **quantization** ([`quantize`]) — the min/max scan plus 32-bit → 8-bit
//!   conversion performed before and after every Conv2D
//!   (re-quantization), growing with network depth.
//!
//! [`gemm`] implements the low-precision GEMM itself (u8 × u8 → i32 with
//! zero points, 16-lane SIMD MACs), [`conv`] lowers 2-D convolution via
//! im2col, [`network`] describes the four evaluated networks (VGG-19,
//! ResNet-v2-152, Inception-ResNet-v2, Residual-GRU) at reproduction
//! scale, and [`inference`] drives whole-network runs for Figures 6 and 7.
//! [`pipeline`] models the Figure 19 CPU/PIM overlap.

pub mod conv;
pub mod gemm;
pub mod inference;
pub mod matrix;
pub mod network;
pub mod pack;
pub mod pipeline;
pub mod quantize;

pub use conv::{conv2d, Conv2dParams};
pub use gemm::{gemm_quantized, GemmShape};
pub use inference::{run_inference, InferenceBreakdown};
pub use matrix::Matrix;
pub use network::{Network, NetworkKind};
pub use pack::{pack_lhs, pack_rhs, unpack_result, PackingKernel, PACK_BLOCK};
pub use pipeline::{run_pipeline, PipelineResult};
pub use quantize::{dequantize, quantize_f32, requantize_i32, QuantParams, QuantizationKernel};
