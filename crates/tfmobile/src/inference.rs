//! Whole-network inference drives (paper §5.2, Figures 6 and 7).

use pim_core::{OpMix, SimContext};

use crate::gemm::gemm_tracked;
use crate::network::Network;
use crate::pack::{pack_tracked, unpack_tracked};
use crate::quantize::quantize_tracked;

/// gemmlowp's cache-blocking row-block (LHS rows per RHS re-pack pass).
pub const ROW_BLOCK: usize = 128;

/// Energy/time breakdown of one inference (the bars of Figures 6 and 7).
#[derive(Debug, Clone)]
pub struct InferenceBreakdown {
    /// Network label.
    pub network: &'static str,
    /// Energy fractions: packing, quantization, Conv2D+MatMul, other.
    pub energy_fractions: Vec<(String, f64)>,
    /// Execution-time fractions, same categories.
    pub time_fractions: Vec<(String, f64)>,
    /// Whole-run data-movement share of energy (§5.2: 57.3% average).
    pub dm_fraction: f64,
    /// Share of data-movement energy from packing+quantization (54.4% avg).
    pub pack_quant_dm_share: f64,
    /// Total energy, pJ.
    pub total_pj: f64,
    /// Total time, ps.
    pub total_ps: u64,
}

/// Run one inference through the context, attributing work to the paper's
/// categories: `packing`, `quantization`, `gemm` (Conv2D+MatMul), `other`.
pub fn run_inference(net: &Network, ctx: &mut SimContext) -> InferenceBreakdown {
    for layer in net.layers() {
        let g = layer.gemm;
        // Quantize the input activations (32-bit -> 8-bit, two scans).
        ctx.scoped("quantization", |ctx| quantize_tracked(ctx, layer.quant_in_elems));
        // Pack LHS (im2col'd activations) and RHS (weights).
        ctx.scoped("packing", |ctx| pack_tracked(ctx, g.m, g.k, g.n, ROW_BLOCK));
        // The GEMM kernel itself.
        ctx.scoped("gemm", |ctx| gemm_tracked(ctx, g));
        // Re-quantize the 32-bit result.
        ctx.scoped("quantization", |ctx| quantize_tracked(ctx, g.m * g.n));
        // Unpack the result chunk.
        ctx.scoped("packing", |ctx| unpack_tracked(ctx, g.m, g.n));
        // Bias/activation bookkeeping and layer dispatch.
        ctx.scoped("other", |ctx| ctx.ops(OpMix::scalar((g.m * g.n / 16 + 5_000) as u64)));
    }

    let total = ctx.total_energy();
    let total_ps = ctx.now_ps();
    let cats = ["packing", "quantization", "gemm", "other"];
    let energy_fractions = cats
        .iter()
        .map(|&t| {
            let e = ctx.tag(t).map(|s| s.energy.total_pj()).unwrap_or(0.0);
            (t.to_string(), e / total.total_pj())
        })
        .collect();
    let time_fractions = cats
        .iter()
        .map(|&t| {
            let p = ctx.tag(t).map(|s| s.time_ps).unwrap_or(0);
            (t.to_string(), p as f64 / total_ps as f64)
        })
        .collect();
    let dm_total = total.data_movement_pj();
    let pack_quant_dm = ["packing", "quantization"]
        .iter()
        .filter_map(|&t| ctx.tag(t))
        .map(|s| s.energy.data_movement_pj())
        .sum::<f64>();
    InferenceBreakdown {
        network: net.kind().label(),
        energy_fractions,
        time_fractions,
        dm_fraction: total.data_movement_fraction(),
        pack_quant_dm_share: if dm_total > 0.0 { pack_quant_dm / dm_total } else { 0.0 },
        total_pj: total.total_pj(),
        total_ps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkKind;
    use pim_core::{Platform, SimContext};

    fn run(kind: NetworkKind, shrink: usize) -> InferenceBreakdown {
        let net = Network::scaled(kind, shrink);
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        run_inference(&net, &mut ctx)
    }

    fn frac(b: &InferenceBreakdown, cat: &str) -> f64 {
        b.energy_fractions.iter().find(|(n, _)| n == cat).unwrap().1
    }

    #[test]
    fn packing_and_quantization_are_significant() {
        // Figure 6: packing + quantization ≈ 39.3% of system energy (avg).
        let mut total = 0.0;
        for kind in NetworkKind::ALL {
            let b = run(kind, 4);
            total += frac(&b, "packing") + frac(&b, "quantization");
        }
        let avg = total / NetworkKind::ALL.len() as f64;
        // Scaled test networks overweight packing (pack traffic ~ k*n does
        // not shrink with spatial scale); the full-scale repro harness
        // lands at ~0.50 (paper: 39.3%). Band covers both.
        assert!((0.25..0.70).contains(&avg), "avg pack+quant = {avg}");
    }

    #[test]
    fn resnet_quantizes_more_than_vgg() {
        // §5.3: more Conv2D invocations => higher quantization overhead.
        let vgg = run(NetworkKind::Vgg19, 4);
        let res = run(NetworkKind::ResNetV2152, 4);
        assert!(
            frac(&res, "quantization") > frac(&vgg, "quantization"),
            "resnet {} vs vgg {}",
            frac(&res, "quantization"),
            frac(&vgg, "quantization")
        );
    }

    #[test]
    fn data_movement_dominates_inference_energy() {
        // §5.2: 57.3% of total system energy is data movement (average).
        let mut dm = 0.0;
        for kind in NetworkKind::ALL {
            dm += run(kind, 4).dm_fraction;
        }
        let avg = dm / 4.0;
        // Full scale: ~0.63 (paper: 57.3%). Scaled tests run higher.
        assert!((0.40..0.92).contains(&avg), "avg DM = {avg}");
    }

    #[test]
    fn pack_quant_produce_majority_of_dm() {
        // §5.2: 54.4% of data-movement energy from packing + quantization.
        let mut share = 0.0;
        for kind in NetworkKind::ALL {
            share += run(kind, 4).pack_quant_dm_share;
        }
        let avg = share / 4.0;
        assert!((0.35..0.80).contains(&avg), "avg share = {avg}");
    }

    #[test]
    fn time_fraction_of_pack_quant_matches_fig7_band() {
        // Figure 7: ~27.4% of execution time on packing + quantization.
        let mut t = 0.0;
        for kind in NetworkKind::ALL {
            let b = run(kind, 4);
            t += b.time_fractions[0].1 + b.time_fractions[1].1;
        }
        let avg = t / 4.0;
        // Full scale: ~0.40 (paper: 27.4%). Scaled tests run higher.
        assert!((0.15..0.65).contains(&avg), "avg time frac = {avg}");
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = run(NetworkKind::Vgg19, 8);
        let e: f64 = b.energy_fractions.iter().map(|(_, f)| f).sum();
        let t: f64 = b.time_fractions.iter().map(|(_, f)| f).sum();
        assert!((e - 1.0).abs() < 1e-9);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
