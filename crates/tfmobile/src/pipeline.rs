//! The Figure 19 pipeline: PIM handles packing + quantization while the
//! CPU executes GEMM kernels in parallel.
//!
//! In the CPU-only configuration every step is serial on the CPU. With
//! PIM, the PIM logic packs chunk *i+1* and re-quantizes/unpacks chunk
//! *i-1* while the CPU multiplies chunk *i* (§5.3), so per-GEMM cost is
//! the *maximum* of the CPU and PIM stage times, not their sum — and the
//! benefit grows with the number of back-to-back GEMM operations.

use pim_core::{overlap_ps, ExecutionMode, OffloadEngine, Ps};

use crate::gemm::{gemm_tracked, GemmShape};
use crate::inference::ROW_BLOCK;
use crate::pack::{pack_tracked, unpack_tracked};
use crate::quantize::quantize_tracked;

/// Result of the Figure 19 sweep for one GEMM count.
#[derive(Debug, Clone, Copy)]
pub struct PipelinePoint {
    /// Number of back-to-back GEMM operations.
    pub gemms: usize,
    /// CPU-only runtime, ps.
    pub cpu_only_ps: Ps,
    /// Runtime with packing/quantization on the PIM core, ps.
    pub pim_core_ps: Ps,
    /// Runtime with packing/quantization on the PIM accelerator, ps.
    pub pim_acc_ps: Ps,
}

impl PipelinePoint {
    /// Speedup of PIM-Core over CPU-only.
    pub fn speedup_core(&self) -> f64 {
        self.cpu_only_ps as f64 / self.pim_core_ps as f64
    }

    /// Speedup of PIM-Acc over CPU-only.
    pub fn speedup_acc(&self) -> f64 {
        self.cpu_only_ps as f64 / self.pim_acc_ps as f64
    }
}

/// Result of the sweep plus the energy comparison of the offloaded stages.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// One point per requested GEMM count.
    pub points: Vec<PipelinePoint>,
    /// Energy of packing+quantization per GEMM: CPU / PIM-Core / PIM-Acc, pJ.
    pub stage_energy_pj: [f64; 3],
}

/// Time and energy of the offloadable stage (quantize + pack + requantize
/// + unpack) for one GEMM, measured on the given mode's engine.
fn stage_cost(engine: &OffloadEngine, mode: ExecutionMode, g: GemmShape, quant_in: usize) -> (Ps, f64) {
    let mut ctx = engine.context_for(mode);
    quantize_tracked(&mut ctx, quant_in);
    pack_tracked(&mut ctx, g.m, g.k, g.n, ROW_BLOCK);
    quantize_tracked(&mut ctx, g.m * g.n);
    unpack_tracked(&mut ctx, g.m, g.n);
    (ctx.now_ps(), ctx.total_energy().total_pj())
}

/// Time of the GEMM kernel itself on the CPU of the given platform.
fn gemm_cost(engine: &OffloadEngine, mode: ExecutionMode, g: GemmShape) -> (Ps, f64) {
    let mut ctx = match mode {
        // GEMM always runs on the SoC CPU; the platform (LPDDR3 vs 3D-
        // stacked) follows the configuration under test.
        ExecutionMode::CpuOnly => engine.context_for(ExecutionMode::CpuOnly),
        _ => {
            let mut c = engine.context_for(mode);
            c.switch_engine(pim_core::EngineTiming::soc_cpu(), pim_core::Port::Cpu);
            c
        }
    };
    gemm_tracked(&mut ctx, g);
    (ctx.now_ps(), ctx.total_energy().total_pj())
}

/// Sweep the number of back-to-back GEMMs (Figure 19 uses 1, 4, 16).
pub fn run_pipeline(g: GemmShape, quant_in: usize, counts: &[usize]) -> PipelineResult {
    let engine = OffloadEngine::new();
    let (stage_cpu_ps, stage_cpu_pj) = stage_cost(&engine, ExecutionMode::CpuOnly, g, quant_in);
    let (stage_core_ps, stage_core_pj) = stage_cost(&engine, ExecutionMode::PimCore, g, quant_in);
    let (stage_acc_ps, stage_acc_pj) = stage_cost(&engine, ExecutionMode::PimAcc, g, quant_in);
    let (gemm_base_ps, _) = gemm_cost(&engine, ExecutionMode::CpuOnly, g);
    let (gemm_stacked_ps, _) = gemm_cost(&engine, ExecutionMode::PimCore, g);

    // Offload hand-off latency per chunk (coherence round trip, §8.2).
    let handoff: Ps = {
        let mut ctx = engine.context_for(ExecutionMode::PimCore);
        let t0 = ctx.now_ps();
        ctx.offload_transition(g.bytes(), true);
        ctx.offload_transition(g.bytes(), false);
        ctx.now_ps() - t0
    };

    let points = counts
        .iter()
        .map(|&n| {
            let cpu_only_ps = n as u64 * (stage_cpu_ps + gemm_base_ps);
            // Pipelined: the first chunk's input pack fills the pipe
            // (~2/5 of the stage), each GEMM then overlaps the neighbor
            // chunks' PIM work, and the last chunk's re-quantization
            // drains (~1/5 of the stage).
            let steady_core = overlap_ps(gemm_stacked_ps, stage_core_ps, handoff / n as u64 + 1);
            let steady_acc = overlap_ps(gemm_stacked_ps, stage_acc_ps, handoff / n as u64 + 1);
            let pim_core_ps = 2 * stage_core_ps / 5 + n as u64 * steady_core + stage_core_ps / 5;
            let pim_acc_ps = 2 * stage_acc_ps / 5 + n as u64 * steady_acc + stage_acc_ps / 5;
            PipelinePoint { gemms: n, cpu_only_ps, pim_core_ps, pim_acc_ps }
        })
        .collect();

    PipelineResult {
        points,
        stage_energy_pj: [stage_cpu_pj, stage_core_pj, stage_acc_pj],
    }
}

/// The representative convolution GEMM used for the Figure 19 sweep.
pub fn paper_shape() -> (GemmShape, usize) {
    (GemmShape { m: 784, k: 1152, n: 256 }, 784 * 128)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> PipelineResult {
        let (g, q) = paper_shape();
        run_pipeline(g, q, &[1, 4, 16])
    }

    #[test]
    fn speedup_grows_with_gemm_count() {
        // Figure 19 right: PIM speedups grow from ~13–17% at 1 GEMM to
        // ~57–98% at 16 GEMMs.
        let r = sweep();
        let s: Vec<f64> = r.points.iter().map(|p| p.speedup_core()).collect();
        assert!(s[0] < s[1] && s[1] < s[2], "core speedups {s:?}");
        let a: Vec<f64> = r.points.iter().map(|p| p.speedup_acc()).collect();
        assert!(a[0] < a[1] && a[1] < a[2], "acc speedups {a:?}");
    }

    #[test]
    fn sixteen_gemms_land_in_paper_band() {
        let r = sweep();
        let p16 = r.points[2];
        assert!(
            (1.25..2.2).contains(&p16.speedup_core()),
            "core @16 = {}",
            p16.speedup_core()
        );
        assert!(
            (1.30..2.6).contains(&p16.speedup_acc()),
            "acc @16 = {}",
            p16.speedup_acc()
        );
        assert!(p16.speedup_acc() > p16.speedup_core());
    }

    #[test]
    fn one_gemm_still_wins_modestly() {
        let r = sweep();
        let p1 = r.points[0];
        assert!(p1.speedup_core() > 0.95 && p1.speedup_core() < 1.6, "core @1 = {}", p1.speedup_core());
        assert!(p1.speedup_acc() >= p1.speedup_core());
    }

    #[test]
    fn offloaded_stage_saves_energy() {
        // Figure 19 left: PIM-Core/PIM-Acc cut pack+quant energy ~50%+.
        let r = sweep();
        let [cpu, core, acc] = r.stage_energy_pj;
        assert!(core < 0.65 * cpu, "core {core} vs cpu {cpu}");
        assert!(acc <= core * 1.05);
    }
}
