//! # dmpim — data-movement analysis & processing-in-memory offload simulator
//!
//! Umbrella crate re-exporting the full reproduction of Boroumand et al.,
//! *"Google Workloads for Consumer Devices: Mitigating Data Movement
//! Bottlenecks"* (ASPLOS 2018). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The sub-crates:
//!
//! * [`memsim`] — caches, LPDDR3 and 3D-stacked DRAM, channels, coherence.
//! * [`energy`] — per-component energy parameters and accounting.
//! * [`cpusim`] — SoC core, PIM core and PIM accelerator engine models.
//! * [`core`] — the offload framework: [`core::SimContext`], platforms,
//!   execution modes, PIM-target identification, area model, reports.
//! * [`faults`] — the workspace error type, deterministic fault plans and
//!   the simulation watchdog.
//! * [`trace`] — simulated-time tracing, metrics registry and the Chrome
//!   trace-event / JSON exporters behind `repro --trace` / `--metrics`.
//! * [`harness`] — supervised, resumable, panic-isolated parallel sweep
//!   runner behind `repro --jobs` / `--resume`.
//! * [`chrome`] — texture tiling, color blitting, LZO/ZRAM, page scrolling
//!   and tab switching.
//! * [`tfmobile`] — quantized GEMM, packing, quantization, four networks.
//! * [`vp9`] — VP9-style software codec and hardware-codec traffic model.

pub use pim_chrome as chrome;
pub use pim_core as core;
pub use pim_cpusim as cpusim;
pub use pim_energy as energy;
pub use pim_faults as faults;
pub use pim_harness as harness;
pub use pim_memsim as memsim;
pub use pim_tfmobile as tfmobile;
pub use pim_trace as trace;
pub use pim_vp9 as vp9;
