#!/usr/bin/env bash
# Perf-regression gate: median-of-3 `repro --json` sweeps against the
# committed BENCH_baseline.json budgets.
#
#   scripts/perf_gate.sh            # 3 fresh runs, then gate
#   scripts/perf_gate.sh --reuse    # gate the existing BENCH_history.jsonl
#   scripts/perf_gate.sh --rebase   # 3 fresh runs, rewrite the baseline
#
# Each `repro --json` run appends one compact timing line to
# BENCH_history.jsonl; `repro --perf-gate` medians the newest three and
# compares per-experiment wall times with the baseline, corrected by the
# overall machine-speed ratio (so a slower CI host shifts no verdicts).
# Soft threshold +10% prints a `::warning::` annotation; hard threshold
# +25% fails; baselines under 50 ms are jitter and skipped.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-run}"

if [[ "$mode" != "--reuse" ]]; then
    # Fresh history: three runs so one noisy sample cannot move the median.
    rm -f BENCH_history.jsonl
    for i in 1 2 3; do
        echo "==> perf gate: timing run $i/3"
        cargo run -q --release -p pim-bench --bin repro -- --json >/dev/null
    done
fi

if [[ "$mode" == "--rebase" ]]; then
    # The baseline is the median run verbatim: pick the history line whose
    # total is the median of the three.
    python3 - <<'EOF'
import json
runs = [json.loads(l) for l in open('BENCH_history.jsonl') if l.strip()]
runs.sort(key=lambda r: r['wall_ms'])
base = runs[len(runs) // 2]
doc = {'wall_ms': base['wall_ms'],
       'experiments': [{'id': e['id'], 'wall_ms': e['wall_ms']} for e in base['experiments']]}
open('BENCH_baseline.json', 'w').write(json.dumps(doc, indent=2) + '\n')
print('rebased BENCH_baseline.json: total', base['wall_ms'], 'ms,',
      len(base['experiments']), 'experiments')
EOF
    exit 0
fi

echo "==> perf gate: evaluating against BENCH_baseline.json"
cargo run -q --release -p pim-bench --bin repro -- --perf-gate
