#!/usr/bin/env bash
# Perf-regression gate: median-of-3 `repro --json` sweeps against the
# committed BENCH_baseline.json budgets.
#
#   scripts/perf_gate.sh            # 3 fresh runs, then gate
#   scripts/perf_gate.sh --reuse    # gate the existing BENCH_history.jsonl
#   scripts/perf_gate.sh --rebase   # 3 fresh runs, rewrite the baseline
#
# Each `repro --json` run appends one compact timing line to
# BENCH_history.jsonl, and each timing pass also runs a 1M-device
# `repro --fleet` sweep, which appends its own single-experiment
# `fleet-sweep` line; `repro --perf-gate` medians the newest window per
# experiment and compares wall times with the baseline, corrected by the
# overall machine-speed ratio (so a slower CI host shifts no verdicts).
# Soft threshold +10% prints a `::warning::` annotation; hard threshold
# +25% fails; baselines under 50 ms are jitter and skipped.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-run}"

if [[ "$mode" != "--reuse" ]]; then
    # Fresh history: three runs so one noisy sample cannot move the median.
    rm -f BENCH_history.jsonl
    for i in 1 2 3; do
        echo "==> perf gate: timing run $i/3"
        cargo run -q --release -p pim-bench --bin repro -- --json >/dev/null
        cargo run -q --release -p pim-bench --bin repro -- \
            --fleet --devices 1000000 --seed 7 --jobs 2 >/dev/null
    done
fi

if [[ "$mode" == "--rebase" ]]; then
    # The baseline is the median scorecard run verbatim (the history line
    # whose total is the median of the three), plus the median of the
    # single-experiment fleet-sweep lines appended as one more budget.
    python3 - <<'EOF'
import json
runs = [json.loads(l) for l in open('BENCH_history.jsonl') if l.strip()]
def is_fleet(r):
    exps = r['experiments']
    return len(exps) == 1 and exps[0]['id'] == 'fleet-sweep'
sweeps = sorted((r for r in runs if not is_fleet(r)), key=lambda r: r['wall_ms'])
fleets = sorted(r['experiments'][0]['wall_ms'] for r in runs if is_fleet(r))
base = sweeps[len(sweeps) // 2]
exps = [{'id': e['id'], 'wall_ms': e['wall_ms']} for e in base['experiments']]
if fleets:
    exps.append({'id': 'fleet-sweep', 'wall_ms': fleets[len(fleets) // 2]})
doc = {'wall_ms': base['wall_ms'], 'experiments': exps}
open('BENCH_baseline.json', 'w').write(json.dumps(doc, indent=2) + '\n')
print('rebased BENCH_baseline.json: total', base['wall_ms'], 'ms,',
      len(exps), 'experiments')
EOF
    exit 0
fi

echo "==> perf gate: evaluating against BENCH_baseline.json"
cargo run -q --release -p pim-bench --bin repro -- --perf-gate
