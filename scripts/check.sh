#!/usr/bin/env bash
# Tier-1 gate plus lints: everything that must be green before merging.
#
#   scripts/check.sh
#
# Runs the release build, the full test suite, and clippy with warnings
# promoted to errors. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (chaos matrix capped at ${PIM_CHAOS_SEEDS:-8} seeds/family)"
# The seeded chaos matrices (crates/{harness,serve}/tests/chaos_matrix.rs)
# default to 64 seeds per fault family; the tier-1 gate caps them so the
# loop stays fast. `scripts/chaos_smoke.sh --full` runs the full matrix.
PIM_CHAOS_SEEDS="${PIM_CHAOS_SEEDS:-8}" cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trace-overhead bench (smoke)"
cargo bench -q -p pim-bench --bench trace_overhead -- --smoke

echo "==> profiler-overhead bench (smoke)"
cargo bench -q -p pim-bench --bench profiler_overhead -- --smoke

echo "==> hotpath bench incl. ranged_vs_scalar (smoke)"
# Prints the ranged-descriptor engine against the forced per-row scalar
# walk on all three ports; the bit-identity of the two paths is enforced
# by tests/hotpath_differential.rs, this just keeps the bench compiling
# and running.
hotpath_out=$(cargo bench -q -p pim-bench --bench hotpath -- --smoke)
echo "$hotpath_out" | grep -q 'ranged_vs_scalar' \
    || { echo "hotpath bench: ranged_vs_scalar case missing"; exit 1; }

echo "==> harness selftest (injected panic + hung simulation)"
# Small supervised sweep: two real kernel jobs, one injected panic, one
# watchdog-tripped runaway. The binary exits non-zero unless the failure
# report shows exactly 2 succeeded / 1 failed (panic) / 1 quarantined
# (watchdog-timeout); we additionally assert the counts from the JSON.
selftest_out=$(cargo run -q --release -p pim-bench --bin repro -- --selftest-harness 2>/dev/null)
echo "$selftest_out" | grep -q '"succeeded":2' || { echo "selftest: missing succeeded=2"; exit 1; }
echo "$selftest_out" | grep -q '"quarantined":1' || { echo "selftest: missing quarantined=1"; exit 1; }
echo "$selftest_out" | grep -q '"failed":1' || { echo "selftest: missing failed=1"; exit 1; }
echo "$selftest_out" | grep -q '"panic":1' || { echo "selftest: missing panic taxonomy"; exit 1; }
echo "$selftest_out" | grep -q '"watchdog-timeout":1' || { echo "selftest: missing watchdog taxonomy"; exit 1; }

echo "==> perf smoke: repro --json scorecard drift gate"
# Regenerates BENCH_repro.json (simulated scorecard + wall-clock timing)
# and fails if the scorecard block drifted from the committed file. The
# timing fields move run to run by design; the simulated results must
# not — the access fast path and any future perf work are held to
# bit-identical scorecards.
# (The colon keeps the newer "scorecard_summary" line out of the match.)
committed=$(git show HEAD:BENCH_repro.json 2>/dev/null | grep '"scorecard":' || true)
cargo run -q --release -p pim-bench --bin repro -- --json >/dev/null
current=$(grep '"scorecard":' BENCH_repro.json)
if [[ -n "$committed" && "$committed" != "$current" ]]; then
    echo "perf smoke: scorecard drifted from committed BENCH_repro.json"
    echo "committed: $committed"
    echo "current:   $current"
    exit 1
fi
grep -o '"wall_ms": [0-9]*' BENCH_repro.json | head -1

echo "==> explain: attribution sweep + share-partition gate"
# Regenerates BENCH_explain.json and requires every record's cycle- and
# energy-share vector to sum to 1 (the attribution must be a true
# partition of the modeled cost), plus a named dominant component in the
# headline-gap prose.
explain_out=$(cargo run -q --release -p pim-bench --bin repro -- --explain)
echo "$explain_out" | grep -q 'dominant component:' || { echo "explain: missing dominant component"; exit 1; }
python3 - <<'EOF'
import json
doc = json.load(open('BENCH_explain.json'))
for r in doc['records']:
    for key in ('cycle_ps', 'energy_pj'):
        lanes = {k: v for k, v in r[key].items() if k != 'total'}
        total = sum(lanes.values())
        if total <= 0:
            raise SystemExit(f"explain: {r['kernel']}/{r['mode']} {key} total {total}")
        share_sum = sum(v / total for v in lanes.values())
        if abs(share_sum - 1.0) > 1e-9:
            raise SystemExit(f"explain: {r['kernel']}/{r['mode']} {key} shares sum {share_sum}")
        if 'total' in r[key] and abs(r[key]['total'] - total) > 1e-6 * max(total, 1.0):
            raise SystemExit(f"explain: {r['kernel']}/{r['mode']} {key} total field disagrees")
print(f"explain: {len(doc['records'])} records, shares partition to 1.0")
EOF

echo "==> fleet sweep: 1M-device population + report drift gate"
# One full-scale fleet sweep in the repo root: appends a `fleet-sweep`
# wall-time line to BENCH_history.jsonl (so the perf gate below budgets
# it — the 10k smoke sweeps run in temp dirs and feed nothing) and
# regenerates BENCH_fleet.json, which must match the committed report
# byte for byte: it is a pure function of the sweep key, so any drift
# is a real behavior change in the sampler, the energy model, or the
# sketches.
cargo run -q --release -p pim-bench --bin repro -- \
    --fleet --devices 1000000 --seed 7 --jobs 2 >/dev/null
# (Compare the raw blobs: command substitution would strip the report's
# trailing newline and trip the gate on byte-identical files.)
if git cat-file -e HEAD:BENCH_fleet.json 2>/dev/null \
    && ! cmp -s <(git show HEAD:BENCH_fleet.json) BENCH_fleet.json; then
    echo "fleet sweep: BENCH_fleet.json drifted from the committed report"
    diff <(git show HEAD:BENCH_fleet.json) BENCH_fleet.json | head -20
    exit 1
fi

echo "==> perf gate: history vs committed BENCH_baseline.json"
# The --json and --fleet runs above appended this run's timings to
# BENCH_history.jsonl; gate on the median of the recent window
# (machine-speed corrected, warn >10%, fail >25%, noise floor 50 ms).
if [[ -f BENCH_baseline.json ]]; then
    cargo run -q --release -p pim-bench --bin repro -- --perf-gate
else
    echo "perf gate: no BENCH_baseline.json committed yet; skipping"
fi

echo "==> chaos smoke: SIGKILL recovery + seeded fault matrix (smoke seeds)"
scripts/chaos_smoke.sh

echo "==> fleet smoke: 10k-device sweep, kill+resume bit-identity, quarantine replay"
scripts/fleet_smoke.sh

echo "==> all checks passed"
