#!/usr/bin/env bash
# Tier-1 gate plus lints: everything that must be green before merging.
#
#   scripts/check.sh
#
# Runs the release build, the full test suite, and clippy with warnings
# promoted to errors. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trace-overhead bench (smoke)"
cargo bench -q -p pim-bench --bench trace_overhead -- --smoke

echo "==> all checks passed"
