#!/usr/bin/env bash
# Chaos smoke: two layers of fault tolerance, end to end.
#
#   scripts/chaos_smoke.sh            # SIGKILL smoke + 8-seed fault matrix
#   scripts/chaos_smoke.sh --full     # same, with the full 64-seed matrix
#
# Layer 1 — process death: SIGKILL the pim-serve sweep service mid-run,
# restart it on the same journal, rerun the client, and require the
# recovered sweep's stdout to be byte-identical to an uninterrupted
# serial run. Exercises, over a real TCP socket and a real process kill:
# write-ahead journaling, idempotent re-submission, journal replay of
# finished jobs, and re-execution of jobs the crash destroyed.
#
# Layer 2 — I/O faults: the seeded `pim-chaos` matrix
# (crates/{harness,serve}/tests/chaos_matrix.rs) drives torn writes,
# short reads, interrupt storms, disk-full onsets, and mid-stream
# connection resets through the journal and the wire, asserting every
# seed converges to byte-identical output and every surviving journal
# resumes bit-identically. Default is 8 seeds per family; `--full` (or
# PIM_CHAOS_SEEDS) forces the full 64-seed matrix.
#
# Assumes target/release/repro is already built (scripts/check.sh builds
# it first).
set -euo pipefail
cd "$(dirname "$0")/.."

matrix_seeds="${PIM_CHAOS_SEEDS:-8}"
if [[ "${1:-}" == "--full" ]]; then
    matrix_seeds=64
fi

repro=target/release/repro
cargo build -q --release -p pim-bench --bin repro

chaos_dir=$(mktemp -d)
trap 'rm -rf "$chaos_dir"' EXIT
port=$(( 20000 + $$ % 20000 ))
addr="127.0.0.1:$port"

# The uninterrupted reference run (stdout only; the harness summary goes
# to stderr by design).
"$repro" > "$chaos_dir/serial.txt" 2>/dev/null

wait_for_port() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "chaos smoke: server never came up on $addr"
    return 1
}

# Round 1: serve with a journal, let the client submit everything, then
# SIGKILL the server mid-sweep. The client's death is expected collateral.
"$repro" --serve "$addr" --jobs 2 --journal "$chaos_dir/serve.jsonl" 2>/dev/null &
server_pid=$!
wait_for_port
( "$repro" --connect "$addr" >/dev/null 2>&1 || true ) &
client_pid=$!
sleep 1
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
wait "$client_pid" 2>/dev/null || true

# Round 2: restart on the same journal. Finished jobs replay from the
# journal; destroyed ones re-run. The client rerun re-attaches by id and
# must print byte-identical stdout, then drain the server.
"$repro" --serve "$addr" --jobs 2 --journal "$chaos_dir/serve.jsonl" 2>/dev/null &
server_pid=$!
wait_for_port
"$repro" --connect "$addr" --drain > "$chaos_dir/served.txt" 2>/dev/null
wait "$server_pid"

if ! cmp -s "$chaos_dir/serial.txt" "$chaos_dir/served.txt"; then
    echo "chaos smoke: recovered sweep output diverged from the serial run"
    diff "$chaos_dir/serial.txt" "$chaos_dir/served.txt" | head -20
    exit 1
fi
echo "chaos smoke: ok (recovered sweep byte-identical to serial run)"

echo "chaos smoke: seeded fault matrix ($matrix_seeds seeds/family)"
PIM_CHAOS_SEEDS="$matrix_seeds" cargo test -q -p pim-harness --test chaos_matrix
PIM_CHAOS_SEEDS="$matrix_seeds" cargo test -q -p pim-serve --test chaos_matrix
echo "chaos smoke: ok (fault matrix converged on all $matrix_seeds seeds/family)"
