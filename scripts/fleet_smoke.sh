#!/usr/bin/env bash
# Fleet smoke: crash-safe population sweeps, end to end.
#
#   scripts/fleet_smoke.sh
#
# Three assertions over a real `repro --fleet` binary:
#
# 1. **Kill + resume bit-identity** — sweep a 10k-device population to
#    completion, then rerun the same sweep with a checkpoint, SIGKILL it
#    mid-run, resume from the checkpoint, and require the resumed
#    BENCH_fleet.json to be byte-identical to the uninterrupted one.
#    (The report is a pure function of the sweep key; wall times and
#    resume counters go to stderr only.)
# 2. **Quarantine replay** — a sweep with injected shard timeouts must
#    list every quarantined shard with a replayable seed/offset command.
# 3. **Perf-gate feed** — each sweep appends a `fleet-sweep` line to
#    BENCH_history.jsonl so `repro --perf-gate` budgets fleet wall time.
#
# Assumes target/release/repro is already built (scripts/check.sh builds
# it first).
set -euo pipefail
cd "$(dirname "$0")/.."

repro="$PWD/target/release/repro"
cargo build -q --release -p pim-bench --bin repro

fleet_dir=$(mktemp -d)
trap 'rm -rf "$fleet_dir"' EXIT
devices=10000
seed=7

# Reference: one uninterrupted sweep.
mkdir "$fleet_dir/ref"
(cd "$fleet_dir/ref" && "$repro" --fleet --devices "$devices" --seed "$seed" --jobs 2 \
    >/dev/null 2>&1)

# Kill + resume: slow the shards down so SIGKILL lands mid-sweep, then
# resume from the checkpoint at full speed.
mkdir "$fleet_dir/crash"
(cd "$fleet_dir/crash" && exec "$repro" --fleet --devices "$devices" --seed "$seed" --jobs 2 \
    --fleet-checkpoint fleet.ckpt --fleet-shard-delay-ms 60 >/dev/null 2>&1) &
sweep_pid=$!
disown "$sweep_pid" # keep bash's "Killed" job notice out of the log
sleep 0.2
kill -9 "$sweep_pid" 2>/dev/null || true
while kill -0 "$sweep_pid" 2>/dev/null; do sleep 0.05; done
if [[ ! -f "$fleet_dir/crash/fleet.ckpt" ]]; then
    echo "fleet smoke: SIGKILL landed before the first checkpoint; resume starts fresh"
fi
# Resume to completion, then rerun once more: the second pass must find
# the checkpoint complete and recompute nothing.
(cd "$fleet_dir/crash" && "$repro" --fleet --devices "$devices" --seed "$seed" \
    --jobs 2 --fleet-checkpoint fleet.ckpt >/dev/null 2>&1)
resume_err=$(cd "$fleet_dir/crash" && "$repro" --fleet --devices "$devices" --seed "$seed" \
    --jobs 2 --fleet-checkpoint fleet.ckpt 2>&1 >/dev/null)

if ! cmp -s "$fleet_dir/ref/BENCH_fleet.json" "$fleet_dir/crash/BENCH_fleet.json"; then
    echo "fleet smoke: resumed report diverged from the uninterrupted sweep"
    diff "$fleet_dir/ref/BENCH_fleet.json" "$fleet_dir/crash/BENCH_fleet.json" | head -20
    exit 1
fi
# The second checkpointed rerun must have recomputed nothing.
if ! grep -q "0 shards this run" <<<"$resume_err"; then
    echo "fleet smoke: completed checkpoint was not honored on rerun: $resume_err"
    exit 1
fi
echo "fleet smoke: ok (kill+resume report byte-identical to uninterrupted sweep)"

# Quarantine: injected shard timeouts must surface replayable commands.
mkdir "$fleet_dir/quarantine"
quarantine_out=$(cd "$fleet_dir/quarantine" && "$repro" --fleet --devices "$devices" \
    --seed "$seed" --jobs 2 --fleet-fail-every 4 2>/dev/null)
if ! grep -q "quarantined shard" <<<"$quarantine_out"; then
    echo "fleet smoke: injected shard failures were not quarantined"
    exit 1
fi
if ! grep -q -- "--fleet-offset" <<<"$quarantine_out"; then
    echo "fleet smoke: quarantined shards lack replayable seed/offset commands"
    exit 1
fi
echo "fleet smoke: ok (quarantined shards listed with replay commands)"

# Perf-gate feed: every sweep appends a fleet-sweep timing line.
if ! grep -q '"fleet-sweep"' "$fleet_dir/ref/BENCH_history.jsonl"; then
    echo "fleet smoke: sweep did not append a fleet-sweep line to BENCH_history.jsonl"
    exit 1
fi
echo "fleet smoke: ok (fleet-sweep wall time recorded for the perf gate)"
