//! Encode and decode a synthetic clip with the VP9-style codec, then
//! evaluate the video PIM targets.
//!
//! ```text
//! cargo run --release --example video_pipeline
//! ```

use dmpim::core::{ExecutionMode, OffloadEngine};
use dmpim::vp9::decoder::decode_frame;
use dmpim::vp9::driver::{MotionEstimationKernel, SubPixelInterpolationKernel};
use dmpim::vp9::encoder::{encode_frame, EncoderConfig};
use dmpim::vp9::frame::{Plane, SyntheticVideo};

fn main() {
    // --- Encode a 10-frame GOP and decode it back. ---
    let video = SyntheticVideo::new(320, 192, 2, 0x51d);
    let cfg = EncoderConfig { q: 16, range: 16 };
    let mut enc_refs: Vec<Plane> = Vec::new();
    let mut dec_refs: Vec<Plane> = Vec::new();
    let mut raw_bytes = 0usize;
    let mut coded_bytes = 0usize;
    let mut psnr_sum = 0.0;
    for i in 0..10 {
        let src = video.frame(i);
        raw_bytes += src.data().len();
        let er: Vec<&Plane> = enc_refs.iter().rev().take(3).collect();
        let (frame, recon, stats) = encode_frame(&src, &er, cfg);
        coded_bytes += frame.data.len();
        let dr: Vec<&Plane> = dec_refs.iter().rev().take(3).collect();
        let dec = decode_frame(&frame.data, &dr).expect("own stream decodes");
        assert_eq!(dec.plane, recon, "decoder must match encoder reconstruction");
        psnr_sum += dec.plane.psnr(&src);
        println!(
            "frame {i}: {:>6} bytes, {:>3.0}% sub-pel MBs, PSNR {:.1} dB",
            frame.data.len(),
            100.0 * stats.subpel_mbs as f64 / stats.macroblocks as f64,
            dec.plane.psnr(&src)
        );
        enc_refs.push(recon);
        dec_refs.push(dec.plane);
    }
    println!(
        "\nclip: {:.1}:1 compression, {:.1} dB average PSNR, decoder bit-exact\n",
        raw_bytes as f64 / coded_bytes as f64,
        psnr_sum / 10.0
    );

    // --- The two decoder-side PIM targets (small inputs for speed). ---
    let engine = OffloadEngine::new();
    let mut subpel = SubPixelInterpolationKernel::small();
    let cpu = engine.run(&mut subpel, ExecutionMode::CpuOnly);
    let acc = engine.run(&mut subpel, ExecutionMode::PimAcc);
    println!(
        "sub-pixel interpolation: PIM-Acc saves {:.1}% energy, {:.2}x faster",
        100.0 * (1.0 - acc.energy_vs(&cpu)),
        acc.speedup_vs(&cpu)
    );
    let mut me = MotionEstimationKernel::small();
    let cpu = engine.run(&mut me, ExecutionMode::CpuOnly);
    let acc = engine.run(&mut me, ExecutionMode::PimAcc);
    println!(
        "motion estimation:       PIM-Acc saves {:.1}% energy, {:.2}x faster",
        100.0 * (1.0 - acc.energy_vs(&cpu)),
        acc.speedup_vs(&cpu)
    );
}
