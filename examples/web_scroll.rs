//! Scroll the paper's six web pages and reproduce the Figure 1/2 analysis.
//!
//! ```text
//! cargo run --release --example web_scroll
//! ```

use dmpim::chrome::page::PageModel;
use dmpim::chrome::scroll::run_scroll;
use dmpim::core::{Platform, SimContext};

fn main() {
    println!("page scrolling energy breakdown (CPU-only, LPDDR3 baseline)\n");
    println!(
        "{:<16}{:>10}{:>10}{:>8}{:>10}{:>8}",
        "page", "tiling", "blitting", "other", "DM frac", "MPKI"
    );
    let mut kernels_avg = 0.0;
    let pages = PageModel::all();
    for page in &pages {
        let mut ctx = SimContext::cpu_only(Platform::baseline());
        let b = run_scroll(page, &mut ctx);
        kernels_avg += b.fractions[0].1 + b.fractions[1].1;
        println!(
            "{:<16}{:>9.1}%{:>9.1}%{:>7.1}%{:>9.1}%{:>8.1}",
            page.name,
            100.0 * b.fractions[0].1,
            100.0 * b.fractions[1].1,
            100.0 * b.fractions[2].1,
            100.0 * b.data_movement_fraction,
            b.mpki
        );
    }
    println!(
        "\ntexture tiling + color blitting average: {:.1}% of scrolling energy",
        100.0 * kernels_avg / pages.len() as f64
    );
    println!("(the paper measures 41.9% — §4.2.1)");

    // The same pipeline computed for real: DOM -> layout -> paint -> tile.
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    let r = dmpim::chrome::scroll_page_dom(&mut ctx, 30, 8, 512, 384, 0xd03);
    println!(
        "\nDOM-backed scroll (real layout/paint/tiling): {} nodes, page {} px tall,",
        r.nodes, r.page_height
    );
    println!("{} boxes repainted across 8 frames; stage energy:", r.boxes_painted);
    for (tag, f) in &r.fractions {
        println!("  {tag:<16} {:>5.1}%", 100.0 * f);
    }
    println!("data movement: {:.1}% of energy", 100.0 * r.dm_fraction);
}
