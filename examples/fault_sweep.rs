//! Sweep the fault-injection rate and watch the offload engine degrade
//! gracefully: retries absorb transient faults, fallback walks
//! PIM-Acc → PIM-Core → CPU-only, and the run always completes.
//!
//! The sweep runs through the supervised harness: each fault rate is an
//! isolated job executing on a worker pool, and a deliberately bricked
//! configuration (a simulation that never terminates) rides along to
//! show the watchdog striking it out into quarantine while every
//! sibling job still completes.
//!
//! ```text
//! cargo run --release --example fault_sweep
//! ```

use dmpim::chrome::tiling::TextureTilingKernel;
use dmpim::core::{
    ExecutionMode, FaultConfig, Kernel, OffloadEngine, OpMix, ResiliencePolicy, SimContext,
    Watchdog,
};
use dmpim::harness::{Harness, HarnessPolicy, Job};

/// A hung simulation: spins until a watchdog poisons the context. This
/// stands in for the bricked configurations a large sweep inevitably
/// contains.
struct RunawayKernel;

impl Kernel for RunawayKernel {
    fn name(&self) -> &'static str {
        "runaway"
    }

    fn run(&mut self, ctx: &mut SimContext) {
        while !ctx.is_poisoned() {
            ctx.ops(OpMix::scalar(64));
        }
    }
}

fn main() {
    println!("texture tiling under PIM-Acc offload, rising fault rate (seed 42)\n");
    println!(
        "{:>5}  {:>9}  {:>8}  {:>9}  {:>6}  {:>9}  {:>10}  {:>10}",
        "rate", "executed", "retries", "fallbacks", "flips", "unavail", "runtime ms", "energy uJ"
    );

    let mut jobs: Vec<Job> = [0u32, 10, 25, 50, 75, 100]
        .iter()
        .map(|&pct| {
            Job::new(format!("rate-{pct:03}"), move |_ctx| {
                let rate = f64::from(pct) / 100.0;
                let engine = OffloadEngine::new().with_faults(FaultConfig::with_rate(rate), 42);
                let mut kernel = TextureTilingKernel::new(512, 512, 1);
                let report = engine.run(&mut kernel, ExecutionMode::PimAcc);
                let (retries, fallbacks, flips, unavail) = report
                    .degradation
                    .as_ref()
                    .map(|d| (d.retries, d.fallbacks, d.faults.bit_flips, d.faults.unavail_hits))
                    .unwrap_or((0, 0, 0, 0));
                Ok(format!(
                    "{:>4}%  {:>9}  {:>8}  {:>9}  {:>6}  {:>9}  {:>10.3}  {:>10.1}",
                    pct,
                    report.executed.label(),
                    retries,
                    fallbacks,
                    flips,
                    unavail,
                    report.runtime_ps as f64 / 1e9,
                    report.energy.total_pj() / 1e6,
                ))
            })
        })
        .collect();
    // The bricked configuration: never terminates on its own. The
    // harness's watchdog trips it, two strikes quarantine it, and the
    // rate jobs above are unaffected.
    jobs.push(Job::new("bricked-config", |ctx| {
        let engine = OffloadEngine::new().with_watchdog(ctx.watchdog).with_resilience(
            ResiliencePolicy { max_retries: 0, allow_fallback: false, ..Default::default() },
        );
        engine.try_run(&mut RunawayKernel, ExecutionMode::CpuOnly)?;
        Ok("unreachable".to_string())
    }));

    let policy = HarnessPolicy {
        workers: 3,
        quarantine_strikes: 2,
        watchdog: Watchdog::new(u64::MAX, 500_000),
        ..HarnessPolicy::default()
    };
    let report = match Harness::new(policy).run(jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("harness error: {e}");
            return;
        }
    };
    for r in &report.results {
        match &r.output {
            Some(row) => println!("{row}"),
            None => println!(
                "{:>5}  {} after {} attempt(s): {}",
                r.id,
                r.status.label(),
                r.attempts,
                r.error.as_deref().unwrap_or("unknown")
            ),
        }
    }
    println!("\nharness: {}", report.summary().one_line());
    println!(
        "\nEvery viable run completes: transient faults are retried with\n\
         exponential backoff (charged in simulated time), unrecoverable ones\n\
         fall back to the next execution mode, and CPU-only always finishes.\n\
         The bricked configuration is the exception that proves supervision:\n\
         its watchdog timeouts strike it into quarantine without costing any\n\
         sibling its result."
    );
}
