//! Sweep the fault-injection rate and watch the offload engine degrade
//! gracefully: retries absorb transient faults, fallback walks
//! PIM-Acc → PIM-Core → CPU-only, and the run always completes.
//!
//! ```text
//! cargo run --release --example fault_sweep
//! ```

use dmpim::chrome::tiling::TextureTilingKernel;
use dmpim::core::{ExecutionMode, FaultConfig, OffloadEngine};

fn main() {
    println!("texture tiling under PIM-Acc offload, rising fault rate (seed 42)\n");
    println!(
        "{:>5}  {:>9}  {:>8}  {:>9}  {:>6}  {:>9}  {:>10}  {:>10}",
        "rate", "executed", "retries", "fallbacks", "flips", "unavail", "runtime ms", "energy uJ"
    );
    for pct in [0u32, 10, 25, 50, 75, 100] {
        let rate = f64::from(pct) / 100.0;
        let engine = OffloadEngine::new().with_faults(FaultConfig::with_rate(rate), 42);
        let mut kernel = TextureTilingKernel::new(512, 512, 1);
        let report = engine.run(&mut kernel, ExecutionMode::PimAcc);
        let (retries, fallbacks, flips, unavail) = report
            .degradation
            .as_ref()
            .map(|d| (d.retries, d.fallbacks, d.faults.bit_flips, d.faults.unavail_hits))
            .unwrap_or((0, 0, 0, 0));
        println!(
            "{:>4}%  {:>9}  {:>8}  {:>9}  {:>6}  {:>9}  {:>10.3}  {:>10.1}",
            pct,
            report.executed.label(),
            retries,
            fallbacks,
            flips,
            unavail,
            report.runtime_ps as f64 / 1e9,
            report.energy.total_pj() / 1e6,
        );
    }
    println!(
        "\nEvery run completes: transient faults are retried with exponential\n\
         backoff (charged in simulated time), unrecoverable ones fall back to\n\
         the next execution mode, and CPU-only always finishes."
    );
}
