//! The §4.3.1 tab-switching experiment: 50 tabs on a 2 GB device with
//! LZO-compressed ZRAM swap.
//!
//! ```text
//! cargo run --release --example tab_switch
//! ```

use dmpim::chrome::tabs::{run_tab_switching, TabSwitchConfig};
use dmpim::core::DmpimError;

fn main() -> Result<(), DmpimError> {
    let cfg = TabSwitchConfig::default();
    println!(
        "opening {} tabs (budget {} MB), then switching back through them...\n",
        cfg.tabs, cfg.budget_mb
    );
    let r = run_tab_switching(&cfg)?;

    // A coarse console rendering of Figure 4 (one char ≈ 25 MB/s).
    println!("swap-out rate over time (each column = 1 s, '#' = 25 MB/s):");
    let peak_row = 8;
    for row in (0..peak_row).rev() {
        let line: String = r
            .out_mb_per_s
            .iter()
            .map(|&v| if v > row as f64 * 25.0 { '#' } else { ' ' })
            .collect();
        println!("|{line}");
    }
    println!("+{}", "-".repeat(r.out_mb_per_s.len()));

    println!(
        "\ntotal swapped out: {:.1} GB (paper: 11.7)   swapped in: {:.1} GB (paper: 7.8)",
        r.total_out_gb, r.total_in_gb
    );
    println!(
        "peak rate: {:.0} MB/s (paper: ~201)   LZO ratio on tab memory: {:.2}:1",
        r.out_mb_per_s.iter().cloned().fold(0.0, f64::max),
        r.compression_ratio
    );
    println!(
        "compression share: {:.1}% of energy, {:.1}% of time (paper: 18.1% / 14.2%)",
        100.0 * r.compression_energy_fraction,
        100.0 * r.compression_time_fraction
    );
    Ok(())
}
