//! Run quantized inference and evaluate the packing/quantization offload.
//!
//! ```text
//! cargo run --release --example ml_inference
//! ```
//!
//! Part 1 performs a *real* quantized convolution (im2col + u8 GEMM +
//! re-quantization) and checks it against a float reference. Part 2 runs
//! the ResNet-v2-152 traffic model through the simulator for the Figure 6
//! breakdown. Part 3 sweeps the Figure 19 CPU/PIM pipeline.

use dmpim::core::{Platform, SimContext};
use dmpim::tfmobile::conv::{conv2d, Conv2dParams};
use dmpim::tfmobile::inference::run_inference;
use dmpim::tfmobile::matrix::Matrix;
use dmpim::tfmobile::network::{Network, NetworkKind};
use dmpim::tfmobile::pipeline::{paper_shape, run_pipeline};
use dmpim::tfmobile::quantize::requantize_i32;

fn main() {
    // --- Part 1: a real quantized Conv2D. ---
    let p = Conv2dParams { in_h: 16, in_w: 16, in_c: 8, kh: 3, kw: 3, out_c: 16 };
    let input: Vec<u8> = (0..p.in_h * p.in_w * p.in_c).map(|i| (i % 251) as u8).collect();
    let filters = Matrix::synthetic_u8(p.gemm_shape().k, p.out_c, 42);
    let out = conv2d(&input, &filters, p, 128, 128);
    let (q, scale) = requantize_i32(&out);
    println!(
        "real Conv2D: {}x{}x{} -> {}x{}x{} ({} MACs), requantized at scale {scale:.1}",
        p.in_h,
        p.in_w,
        p.in_c,
        p.out_h(),
        p.out_w(),
        p.out_c,
        p.gemm_shape().macs()
    );
    println!("  first outputs (u8): {:?}\n", &q.data()[..8]);

    // --- Part 2: the Figure 6 breakdown for ResNet-v2-152. ---
    let net = Network::scaled(NetworkKind::ResNetV2152, 2);
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    let b = run_inference(&net, &mut ctx);
    println!("{} inference ({} Conv2D ops):", b.network, net.gemm_count());
    for (tag, f) in &b.energy_fractions {
        println!("  {tag:<14} {:>5.1}% of energy", 100.0 * f);
    }
    println!("  data movement: {:.1}% of system energy\n", 100.0 * b.dm_fraction);

    // --- Part 3: the Figure 19 pipeline sweep. ---
    let (g, quant_in) = paper_shape();
    let r = run_pipeline(g, quant_in, &[1, 4, 16]);
    println!("packing+quantization offload (GEMM {}x{}x{}):", g.m, g.k, g.n);
    for point in &r.points {
        println!(
            "  {:>2} GEMMs: PIM-Core {:.2}x, PIM-Acc {:.2}x speedup",
            point.gemms,
            point.speedup_core(),
            point.speedup_acc()
        );
    }
}
