//! Quickstart: evaluate one PIM target under all three execution modes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Takes the paper's texture-tiling microbenchmark (a 512x512 RGBA bitmap
//! reorganized into 4 kB GPU tiles), runs it CPU-only on the LPDDR3
//! baseline, then on the PIM core and the PIM accelerator inside
//! 3D-stacked memory, and prints the Figure 18-style comparison.

use dmpim::chrome::tiling::TextureTilingKernel;
use dmpim::core::report::mode_sweep_table;
use dmpim::core::OffloadEngine;

fn main() {
    let engine = OffloadEngine::new();
    let mut kernel = TextureTilingKernel::paper_input();

    println!("texture tiling, 512x512 RGBA (paper §9)\n");
    let reports = engine.run_all(&mut kernel);
    print!("{}", mode_sweep_table(&reports));

    let cpu = &reports[0];
    let acc = &reports[2];
    println!(
        "\nPIM-Acc saves {:.1}% energy and runs {:.2}x faster than CPU-only.",
        100.0 * (1.0 - acc.energy_vs(cpu)),
        acc.speedup_vs(cpu)
    );
    println!(
        "CPU-only spends {:.1}% of its energy moving data (MPKI {:.1}).",
        100.0 * cpu.energy.data_movement_fraction(),
        cpu.mpki
    );

    // The identification pipeline of §3.2, on measured numbers.
    let profile = dmpim::core::identify::CandidateProfile {
        name: "texture_tiling".into(),
        workload_energy_fraction: 0.257, // Figure 2
        workload_dm_fraction: 0.257 * 0.815,
        mpki: cpu.mpki,
        own_dm_fraction: cpu.energy.data_movement_fraction(),
        pim_slowdown: acc.runtime_ps as f64 / cpu.runtime_ps as f64,
        accel_area_mm2: dmpim::core::PimTargetKind::TextureTiling.accelerator_mm2(),
    };
    let verdict = dmpim::core::identify::evaluate(&profile, &dmpim::core::AreaModel::default());
    println!("\n§3.2 identification verdict:\n{verdict}");
}
