//! Cross-layer attribution invariants (`repro --explain`), exercised
//! through the public `pim-bench`/`pim-obs` API.
//!
//! Two properties gate the feature: every record's component shares are
//! a true partition of its cost (sum to 1 within 1e-9), and the sweep is
//! bit-identical however many harness workers produce it — attribution
//! must never depend on scheduling.

use pim_bench::explain::{explain_sweep, headline_gap};
use pim_harness::HarnessPolicy;
use pim_obs::{Profiler, COMPONENT_LABELS};

fn policy(workers: usize) -> HarnessPolicy {
    HarnessPolicy { workers, ..HarnessPolicy::default() }
}

#[test]
fn shares_partition_the_cost_for_every_kernel_and_mode() {
    let profiler = Profiler::disabled();
    let (records, report) = explain_sweep(true, policy(2), &profiler).unwrap();
    assert!(report.summary().all_ok(), "{report:?}");
    assert!(!records.is_empty());
    for r in &records {
        let cs: f64 = r.cycle_shares().iter().sum();
        assert!(
            (cs - 1.0).abs() <= 1e-9,
            "{}/{}: cycle shares sum to {cs}",
            r.kernel,
            r.mode
        );
        let es: f64 = r.energy_shares().iter().sum();
        assert!(
            (es - 1.0).abs() <= 1e-9,
            "{}/{}: energy shares sum to {es}",
            r.kernel,
            r.mode
        );
        // The cycle attribution accounts for the whole modeled runtime.
        let total: f64 = r.cycle_ps.iter().sum();
        assert!(
            total <= r.runtime_ps as f64 * (1.0 + 1e-9) + 1.0,
            "{}/{}: attributed {total} ps exceeds runtime {} ps",
            r.kernel,
            r.mode,
            r.runtime_ps
        );
    }
}

#[test]
fn attribution_is_bit_identical_across_worker_counts() {
    let profiler = Profiler::disabled();
    let (serial, _) = explain_sweep(true, policy(1), &profiler).unwrap();
    let (parallel, _) = explain_sweep(true, policy(4), &profiler).unwrap();
    let s: Vec<String> = serial.iter().map(|r| r.to_line()).collect();
    let p: Vec<String> = parallel.iter().map(|r| r.to_line()).collect();
    assert_eq!(s, p, "explain records must not depend on worker scheduling");
}

#[test]
fn headline_gap_is_internally_consistent() {
    let profiler = Profiler::disabled();
    let (records, _) = explain_sweep(true, policy(2), &profiler).unwrap();
    let h = headline_gap(&records).expect("smoke catalog has cpu/acc pairs");
    assert!(h.measured_speedup > 1.0, "PIM-Acc should beat CPU-only");
    // Component deltas sum to the total saved time, and their shares
    // partition it.
    let delta_sum: f64 = h.gap.delta_ps.iter().sum();
    assert!((delta_sum - h.gap.total_delta_ps).abs() <= 1e-6 * h.gap.total_delta_ps.abs());
    let share_sum: f64 = h.gap.shares.iter().sum();
    assert!((share_sum - 1.0).abs() <= 1e-9, "shares sum to {share_sum}");
    let (label, share) = h.gap.dominant();
    assert!(COMPONENT_LABELS.contains(&label));
    assert!(share > 0.0, "the dominant component saves time, not loses it");
}
