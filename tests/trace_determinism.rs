//! End-to-end properties of the observability layer: byte-identical
//! artifacts for a fixed seed, the disabled-tracer purity guarantee, and
//! the structural contract of the Chrome trace (`repro --trace`).

use dmpim::chrome::tiling::TextureTilingKernel;
use dmpim::core::{ExecutionMode, FaultConfig, OffloadEngine, RunReport, Tracer};

fn report_key(r: &RunReport) -> (u64, u64, u64) {
    (r.runtime_ps, r.energy.total_pj().to_bits(), r.instructions)
}

/// One traced run covering engine, vault, phase and fault tracks.
fn traced_run(tracer: &Tracer) -> RunReport {
    let engine = OffloadEngine::new().with_tracer(tracer);
    let mut k = TextureTilingKernel::new(128, 128, 3);
    engine.run(&mut k, ExecutionMode::CpuOnly);
    engine.run(&mut k, ExecutionMode::PimAcc);
    let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::none() };
    OffloadEngine::new()
        .with_faults(cfg, 9)
        .with_tracer(tracer)
        .run(&mut k, ExecutionMode::PimAcc)
}

/// Same seed ⇒ byte-identical trace JSON, metrics JSON and run JSON.
#[test]
fn artifacts_are_byte_identical_across_runs() {
    let (ta, tb) = (Tracer::new(), Tracer::new());
    let ra = traced_run(&ta);
    let rb = traced_run(&tb);
    assert_eq!(ta.chrome_trace(), tb.chrome_trace());
    assert_eq!(ta.metrics().to_json(), tb.metrics().to_json());
    assert_eq!(ra.to_json(), rb.to_json());
}

/// A disabled tracer (and no tracer at all) leaves every reported number
/// bit-identical to the traced run: observation does not perturb the
/// simulation.
#[test]
fn tracer_never_perturbs_the_simulation() {
    let mut k = TextureTilingKernel::new(128, 128, 3);
    let plain = OffloadEngine::new().run(&mut k, ExecutionMode::PimAcc);
    let disabled = OffloadEngine::new()
        .with_tracer(&Tracer::disabled())
        .run(&mut k, ExecutionMode::PimAcc);
    let tracer = Tracer::new();
    let traced = OffloadEngine::new().with_tracer(&tracer).run(&mut k, ExecutionMode::PimAcc);
    assert_eq!(report_key(&plain), report_key(&disabled));
    assert_eq!(report_key(&plain), report_key(&traced));
    assert_eq!(Tracer::disabled().event_count(), 0);
    assert!(tracer.event_count() > 0);
}

/// The trace covers at least the four required track families and its
/// events are ordered by simulated time.
#[test]
fn trace_structure_holds() {
    let tracer = Tracer::new();
    traced_run(&tracer);
    let tracks = tracer.tracks();
    for want in ["cpu", "pim-accel", "kernel-phases", "faults"] {
        assert!(tracks.iter().any(|t| t == want), "missing {want}: {tracks:?}");
    }
    assert!(tracks.iter().any(|t| t.starts_with("vault ")), "{tracks:?}");
    assert!(tracks.len() >= 4);

    // Exported Chrome events are sorted by timestamp; "ts" values in file
    // order must be non-decreasing.
    let json = tracer.chrome_trace();
    let mut last = -1.0f64;
    let mut seen = 0usize;
    for line in json.lines() {
        let Some(pos) = line.find("\"ts\":") else { continue };
        let rest = &line[pos + 5..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        let ts: f64 = rest[..end].trim().parse().unwrap();
        assert!(ts >= last, "trace not time-ordered: {ts} after {last}");
        last = ts;
        seen += 1;
    }
    assert!(seen > 100, "expected many timestamped events, got {seen}");

    // The phase marks from the kernel show up on the phase track.
    assert!(json.contains("tile-row"));
    assert!(json.contains("texture_tiling"));
}

/// Fault instants land on the `faults` track and the degradation record
/// round-trips through JSON.
#[test]
fn faulted_run_is_visible_in_trace_and_json() {
    let tracer = Tracer::new();
    let report = traced_run(&tracer);
    assert!(tracer.metrics().counters["faults.tripped"] >= 1);
    assert!(tracer.chrome_trace().contains("vault-failure"));
    let json = report.to_json();
    let degradation = report.degradation.expect("faulted run must degrade");
    assert!(degradation.fallbacks >= 1);
    assert!(json.contains("\"degradation\":{"));
    assert!(json.contains("\"fallbacks\""));
}
