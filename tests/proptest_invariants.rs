//! Property-style tests on the core data structures and invariants.
//!
//! The container has no third-party property-testing crate, so each
//! property runs over a deterministic seeded sweep: inputs are drawn from
//! [`SplitMix64`] across a fixed number of cases (see `proptest_codec.rs`).

use dmpim::chrome::tiling::{tile_bitmap, untile_bitmap};
use dmpim::chrome::Bitmap;
use dmpim::chrome::{compress, decompress};
use dmpim::core::rng::SplitMix64;
use dmpim::memsim::{AccessKind, Cache, CacheConfig, Channel, MemConfig, MemorySystem};
use dmpim::tfmobile::matrix::Matrix;
use dmpim::tfmobile::quantize::{dequantize, quantize_f32};
use dmpim::vp9::entropy::{read_coeffs, write_coeffs, BoolReader, BoolWriter};
use dmpim::vp9::transform::{dequantize as deq4, forward4x4, inverse4x4, quantize as q4};

fn random_bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u8()).collect()
}

fn random_block(rng: &mut SplitMix64, lo: i32, hi: i32) -> [i32; 16] {
    let mut b = [0i32; 16];
    for v in &mut b {
        *v = lo + rng.next_below((hi - lo) as u64) as i32;
    }
    b
}

/// LZO round-trips arbitrary byte strings.
#[test]
fn lzo_roundtrip() {
    let mut rng = SplitMix64::new(0x01A0_0001);
    for case in 0..64 {
        let data = random_bytes(&mut rng, 8191);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data, "case {case}, len {}", data.len());
    }
}

/// LZO round-trips highly repetitive strings (the match-heavy path).
#[test]
fn lzo_roundtrip_repetitive() {
    let mut rng = SplitMix64::new(0x01A0_0002);
    for case in 0..64 {
        let unit_len = rng.next_range(1, 16) as usize;
        let unit: Vec<u8> = (0..unit_len).map(|_| rng.next_u8()).collect();
        let reps = rng.next_range(1, 600) as usize;
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data, "case {case}, unit {unit_len} x {reps}");
    }
}

/// LZO decompression never panics on arbitrary garbage, and never panics
/// on truncated or bit-flipped versions of valid streams — it reports
/// [`dmpim::core::DmpimError::Corrupt`] instead.
#[test]
fn lzo_decompress_never_panics() {
    let mut rng = SplitMix64::new(0x01A0_0003);
    // Pure garbage.
    for _ in 0..128 {
        let data = random_bytes(&mut rng, 512);
        let _ = decompress(&data);
    }
    // Mutations of a valid stream: truncations and single-byte flips.
    let original: Vec<u8> = (0..2048).map(|_| rng.next_u8()).collect();
    let packed = compress(&original);
    for cut in 0..packed.len().min(64) {
        let _ = decompress(&packed[..cut]);
    }
    for _ in 0..128 {
        let mut m = packed.clone();
        let at = rng.next_below(m.len() as u64) as usize;
        m[at] ^= rng.next_u8() | 1;
        match decompress(&m) {
            Ok(_) => {}                                        // benign flip
            Err(e) => assert!(e.to_string().contains("corrupt"), "unexpected error {e}"),
        }
    }
}

/// The boolean coder reproduces any bit/probability sequence.
#[test]
fn bool_coder_roundtrip() {
    let mut rng = SplitMix64::new(0x01A0_0004);
    for case in 0..64 {
        let n = rng.next_below(2000) as usize;
        let seq: Vec<(u8, bool)> =
            (0..n).map(|_| (rng.next_range(1, 256) as u8, rng.chance(0.5))).collect();
        let mut w = BoolWriter::new();
        for &(p, b) in &seq {
            w.put(p, b);
        }
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        for (i, &(p, b)) in seq.iter().enumerate() {
            assert_eq!(r.get(p), b, "case {case}, symbol {i}");
        }
    }
}

/// Coefficient blocks survive entropy coding exactly.
#[test]
fn coeff_coding_roundtrip() {
    let mut rng = SplitMix64::new(0x01A0_0005);
    for case in 0..64 {
        let block = random_block(&mut rng, -8000, 8000);
        let mut w = BoolWriter::new();
        write_coeffs(&mut w, &block);
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        assert_eq!(read_coeffs(&mut r), block, "case {case}");
    }
}

/// The 4x4 WHT is an exact integer bijection on residual-range blocks.
#[test]
fn wht_roundtrip() {
    let mut rng = SplitMix64::new(0x01A0_0006);
    for case in 0..64 {
        let block = random_block(&mut rng, -255, 256);
        assert_eq!(inverse4x4(&forward4x4(&block)), block, "case {case}");
    }
}

/// Quantize/dequantize error is bounded by half a step.
#[test]
fn transform_quant_error_bound() {
    let mut rng = SplitMix64::new(0x01A0_0007);
    for case in 0..64 {
        let block = random_block(&mut rng, -255, 256);
        let q = rng.next_below(64) as u8;
        let step = dmpim::vp9::transform::quant_step(q);
        let mut coeffs = forward4x4(&block);
        q4(&mut coeffs, step);
        deq4(&mut coeffs, step);
        let rec = inverse4x4(&coeffs);
        for (a, b) in block.iter().zip(rec.iter()) {
            // Coefficient error <= step/2 per coefficient; the inverse
            // averages 16 coefficients (plus rounding).
            assert!((a - b).abs() <= step / 2 + 1, "case {case}: {a} vs {b} at step {step}");
        }
    }
}

/// Texture tiling is a bijection on tile-aligned bitmaps.
#[test]
fn tiling_bijection() {
    let mut rng = SplitMix64::new(0x01A0_0008);
    for _ in 0..16 {
        let w = rng.next_range(1, 6) as usize;
        let h = rng.next_range(1, 6) as usize;
        let seed = rng.next_u64();
        let bm = Bitmap::synthetic(w * 32, h * 32, seed);
        let tiled = tile_bitmap(&bm);
        assert_eq!(untile_bitmap(&tiled, w * 32, h * 32), bm, "{w}x{h} seed {seed:#x}");
    }
}

/// f32 quantization error is bounded by one scale step.
#[test]
fn f32_quant_error() {
    let mut rng = SplitMix64::new(0x01A0_0009);
    for case in 0..64 {
        let n = rng.next_range(1, 64) as usize;
        let vals: Vec<f32> = (0..n).map(|_| (rng.next_f64() * 200.0 - 100.0) as f32).collect();
        let m = Matrix::from_vec(1, n, vals);
        let (q, p) = quantize_f32(&m);
        let back = dequantize(&q, p);
        for (a, b) in m.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= p.scale * 1.001, "case {case}: {a} vs {b}");
        }
    }
}

/// A cache never reports more hits than accesses, and re-accessing the
/// same line immediately always hits.
#[test]
fn cache_sanity() {
    let mut rng = SplitMix64::new(0x01A0_000A);
    for _ in 0..16 {
        let n = rng.next_range(1, 200) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
        let mut c = Cache::new(CacheConfig { capacity_bytes: 4096, associativity: 4 }).unwrap();
        for &a in &addrs {
            c.access(a, AccessKind::Read);
            let again = c.access(a, AccessKind::Read);
            assert!(again.hit);
        }
        let s = c.stats();
        assert!(s.hits + s.misses == s.accesses);
        assert!(s.hits >= addrs.len() as u64); // the immediate re-reads
    }
}

/// Channel time is monotone in bytes and never negative.
#[test]
fn channel_monotone() {
    let mut rng = SplitMix64::new(0x01A0_000B);
    for _ in 0..16 {
        let n = rng.next_range(1, 50) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.next_range(1, 10_000)).collect();
        let mut ch = Channel::new(16.0).unwrap();
        let mut last_busy = 0;
        for &s in &sizes {
            ch.transfer(s, 0);
            assert!(ch.busy_until() >= last_busy);
            last_busy = ch.busy_until();
        }
        assert_eq!(ch.bytes_moved(), sizes.iter().sum::<u64>());
    }
}

/// Memory-system accesses preserve byte accounting: DRAM traffic is
/// line-aligned and never smaller than the demand-missed bytes.
#[test]
fn memory_accounting() {
    let mut rng = SplitMix64::new(0x01A0_000C);
    for _ in 0..8 {
        let n = rng.next_range(1, 40) as usize;
        let mut m = MemorySystem::new(MemConfig::chromebook_like()).unwrap();
        for _ in 0..n {
            let addr = rng.next_below(1_000_000);
            let bytes = rng.next_range(1, 4096);
            let out = m.access(addr, bytes, AccessKind::Read, 0);
            assert_eq!(out.activity.dram_read_bytes % 64, 0);
            assert_eq!(out.activity.dram_read_bytes / 64, out.memory_lines);
            assert!(out.lines >= 1);
        }
    }
}
