//! Property-based tests on the core data structures and invariants.

use dmpim::chrome::tiling::{tile_bitmap, untile_bitmap};
use dmpim::chrome::Bitmap;
use dmpim::chrome::{compress, decompress};
use dmpim::memsim::{AccessKind, Cache, CacheConfig, Channel, MemConfig, MemorySystem};
use dmpim::tfmobile::matrix::Matrix;
use dmpim::tfmobile::quantize::{dequantize, quantize_f32};
use dmpim::vp9::entropy::{read_coeffs, write_coeffs, BoolReader, BoolWriter};
use dmpim::vp9::transform::{dequantize as deq4, forward4x4, inverse4x4, quantize as q4};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LZO round-trips arbitrary byte strings.
    #[test]
    fn lzo_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// LZO round-trips highly repetitive strings (the match-heavy path).
    #[test]
    fn lzo_roundtrip_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..600,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// The boolean coder reproduces any bit/probability sequence.
    #[test]
    fn bool_coder_roundtrip(seq in proptest::collection::vec((1u8..=255, any::<bool>()), 0..2000)) {
        let mut w = BoolWriter::new();
        for &(p, b) in &seq {
            w.put(p, b);
        }
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        for (i, &(p, b)) in seq.iter().enumerate() {
            prop_assert_eq!(r.get(p), b, "symbol {}", i);
        }
    }

    /// Coefficient blocks survive entropy coding exactly.
    #[test]
    fn coeff_coding_roundtrip(block in proptest::array::uniform16(-8000i32..8000)) {
        let mut w = BoolWriter::new();
        write_coeffs(&mut w, &block);
        let data = w.finish();
        let mut r = BoolReader::new(&data);
        prop_assert_eq!(read_coeffs(&mut r), block);
    }

    /// The 4x4 WHT is an exact integer bijection on residual-range blocks.
    #[test]
    fn wht_roundtrip(block in proptest::array::uniform16(-255i32..=255)) {
        prop_assert_eq!(inverse4x4(&forward4x4(&block)), block);
    }

    /// Quantize/dequantize error is bounded by half a step.
    #[test]
    fn transform_quant_error_bound(
        block in proptest::array::uniform16(-255i32..=255),
        q in 0u8..=63,
    ) {
        let step = dmpim::vp9::transform::quant_step(q);
        let mut coeffs = forward4x4(&block);
        q4(&mut coeffs, step);
        deq4(&mut coeffs, step);
        let rec = inverse4x4(&coeffs);
        for (a, b) in block.iter().zip(rec.iter()) {
            // Coefficient error <= step/2 per coefficient; the inverse
            // averages 16 coefficients (plus rounding).
            prop_assert!((a - b).abs() <= step / 2 + 1, "{} vs {} at step {}", a, b, step);
        }
    }

    /// Texture tiling is a bijection on tile-aligned bitmaps.
    #[test]
    fn tiling_bijection(w in 1usize..6, h in 1usize..6, seed in any::<u64>()) {
        let bm = Bitmap::synthetic(w * 32, h * 32, seed);
        let tiled = tile_bitmap(&bm);
        prop_assert_eq!(untile_bitmap(&tiled, w * 32, h * 32), bm);
    }

    /// f32 quantization error is bounded by one scale step.
    #[test]
    fn f32_quant_error(vals in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = vals.len();
        let m = Matrix::from_vec(1, n, vals);
        let (q, p) = quantize_f32(&m);
        let back = dequantize(&q, p);
        for (a, b) in m.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= p.scale * 1.001, "{} vs {}", a, b);
        }
    }

    /// A cache never reports more hits than accesses, and re-accessing the
    /// same line immediately always hits.
    #[test]
    fn cache_sanity(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(CacheConfig { capacity_bytes: 4096, associativity: 4 });
        for &a in &addrs {
            c.access(a, AccessKind::Read);
            let again = c.access(a, AccessKind::Read);
            prop_assert!(again.hit);
        }
        let s = c.stats();
        prop_assert!(s.hits + s.misses == s.accesses);
        prop_assert!(s.hits >= addrs.len() as u64); // the immediate re-reads
    }

    /// Channel time is monotone in bytes and never negative.
    #[test]
    fn channel_monotone(sizes in proptest::collection::vec(1u64..10_000, 1..50)) {
        let mut ch = Channel::new(16.0);
        let mut last_busy = 0;
        for &s in &sizes {
            ch.transfer(s, 0);
            prop_assert!(ch.busy_until() >= last_busy);
            last_busy = ch.busy_until();
        }
        prop_assert_eq!(ch.bytes_moved(), sizes.iter().sum::<u64>());
    }

    /// Memory-system accesses preserve byte accounting: DRAM traffic is
    /// line-aligned and never smaller than the demand-missed bytes.
    #[test]
    fn memory_accounting(ranges in proptest::collection::vec((0u64..1_000_000, 1u64..4096), 1..40)) {
        let mut m = MemorySystem::new(MemConfig::chromebook_like());
        for &(addr, bytes) in &ranges {
            let out = m.access(addr, bytes, AccessKind::Read, 0);
            prop_assert_eq!(out.activity.dram_read_bytes % 64, 0);
            prop_assert_eq!(out.activity.dram_read_bytes / 64, out.memory_lines);
            prop_assert!(out.lines >= 1);
        }
    }
}
