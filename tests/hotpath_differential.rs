//! Differential tests for the line-coalescing fast path.
//!
//! `SimContext::set_fast_path(false)` forces every access through the
//! full per-line cache walk, fault draw and coherence loop. These tests
//! drive SplitMix64 random mixed read/write streams — over a million
//! accesses across the three study platforms — and assert that every
//! observable (simulated time, activity counters, energy, cache and
//! coherence statistics) is bit-identical between the two paths, with
//! and without a seeded fault plan, with and without tracing.

use dmpim::core::rng::SplitMix64;
use dmpim::core::{
    AccessKind, EngineTiming, FaultConfig, FaultPlan, Platform, Port, SimContext, Tracer,
};

const LINE: u64 = 64;
const WORKING_SET: u64 = 4 << 20;

/// Drive a random mixed read/write stream. Roughly half the accesses
/// re-touch the previous address (the pattern the fast path coalesces);
/// the rest jump across the working set with sizes that sometimes span
/// multiple lines, so both paths are exercised in interleaved order.
fn drive(ctx: &mut SimContext, accesses: usize, seed: u64) {
    let buf = ctx.alloc(WORKING_SET);
    let lines = WORKING_SET / LINE;
    let mut rng = SplitMix64::new(seed);
    let mut addr = buf.addr(0);
    for _ in 0..accesses {
        if rng.next_below(2) == 0 {
            let line = rng.next_below(lines);
            addr = buf.addr(line * LINE + rng.next_below(LINE));
        }
        let bytes = match rng.next_below(8) {
            0 => 1 + rng.next_below(200), // occasionally multi-line
            _ => 1 + rng.next_below(16),
        };
        let kind =
            if rng.next_below(4) == 0 { AccessKind::Write } else { AccessKind::Read };
        ctx.access(addr, bytes, kind);
    }
}

/// Everything observable about a finished simulation, formatted so a
/// string comparison is a bit-level comparison (floats via `to_bits`).
fn fingerprint(ctx: &SimContext) -> String {
    let mem = ctx.memory();
    format!(
        "now={} act={:?} energy={:x} cpu_l1={:?} llc={:?} pim_l1={:?} dram={:?} coh={:?}",
        ctx.now_ps(),
        ctx.total_activity(),
        ctx.total_energy().total_pj().to_bits(),
        mem.cpu_l1_stats(),
        mem.llc_stats(),
        mem.pim_l1_stats(),
        mem.dram_stats(),
        ctx.coherence_stats(),
    )
}

fn platforms() -> Vec<(&'static str, Platform, EngineTiming, Port)> {
    vec![
        ("cpu", Platform::baseline(), EngineTiming::soc_cpu(), Port::Cpu),
        ("pim-core", Platform::pim(), EngineTiming::pim_core(), Port::PimCore),
        ("pim-acc", Platform::pim(), EngineTiming::pim_accel(), Port::PimAccel),
    ]
}

fn run(
    platform: Platform,
    timing: EngineTiming,
    port: Port,
    fast: bool,
    accesses: usize,
    seed: u64,
    faults: Option<u64>,
) -> String {
    let mut ctx = SimContext::new(platform, timing, port);
    if let Some(fault_seed) = faults {
        let plan = FaultPlan::new(FaultConfig::with_rate(0.4), fault_seed).unwrap();
        ctx = ctx.with_fault_plan(plan);
    }
    ctx.set_fast_path(fast);
    drive(&mut ctx, accesses, seed);
    fingerprint(&ctx)
}

/// Fast vs slow bit-identity on all three platforms, over a million
/// random accesses in aggregate.
#[test]
fn fast_path_is_bit_identical_on_all_platforms() {
    for (name, platform, timing, port) in platforms() {
        let fast = run(platform, timing, port, true, 350_000, 0x0701 ^ port as u64, None);
        let slow = run(platform, timing, port, false, 350_000, 0x0701 ^ port as u64, None);
        assert_eq!(fast, slow, "platform {name}");
    }
}

/// Bit-identity holds with a seeded fault plan: the fast path must not
/// change how many random draws the plan consumes.
#[test]
fn fast_path_is_bit_identical_under_faults() {
    for (name, platform, timing, port) in platforms() {
        let fast =
            run(platform, timing, port, true, 120_000, 0x0702, Some(0xFA57 ^ port as u64));
        let slow =
            run(platform, timing, port, false, 120_000, 0x0702, Some(0xFA57 ^ port as u64));
        assert_eq!(fast, slow, "platform {name}");
    }
}

/// Emit the ranged-access adversary stream: column-major plane walks
/// (row stride = plane pitch, tiny row payloads), large-stride
/// motion-search rectangle reads like the VP9 kernels issue, and long
/// contiguous streaming rows — interleaved with scalar pokes so ranged
/// and per-line bookkeeping mix. When `ranged` is false every call is
/// decomposed into the per-row scalar loop `access_range` is defined
/// against, so comparing fingerprints is a semantic differential of the
/// ranged engine, not just of its internal gating.
fn drive_adversary(ctx: &mut SimContext, ranged: bool, seed: u64) {
    const PITCH: u64 = 4096;
    let buf = ctx.alloc(16 << 20);
    let mut rng = SplitMix64::new(seed);
    let emit = |ctx: &mut SimContext, addr: u64, row_bytes: u64, stride: u64, rows: u64, kind| {
        if ranged {
            ctx.access_range(addr, row_bytes, stride, rows, kind);
        } else {
            for i in 0..rows {
                ctx.access(addr + i * stride, row_bytes, kind);
            }
        }
    };
    // Column-major walks: one descriptor per column, stride = pitch.
    for col in 0..48u64 {
        let x = (col * 61) % (PITCH - 8);
        let kind = if col % 5 == 0 { AccessKind::Write } else { AccessKind::Read };
        emit(ctx, buf.addr(x), 1 + col % 8, PITCH, 768, kind);
        if col % 7 == 0 {
            ctx.access(buf.addr(rng.next_below(1 << 20)), 1 + rng.next_below(64), AccessKind::Read);
        }
    }
    // Motion-search rectangles: bs+7 rows of bs+7 bytes per candidate,
    // candidates jumping ±range around each macroblock like `motion_search`.
    let bs: u64 = 16;
    for by in (0..256).step_by(bs as usize) {
        for bx in (0..256).step_by(bs as usize) {
            for cand in 0..6u64 {
                let dx = (cand * 11) % 33;
                let dy = (cand * 7) % 33;
                let addr = buf.addr((by + dy) * PITCH + bx + dx);
                emit(ctx, addr, bs + 7, PITCH, bs + 7, AccessKind::Read);
            }
            emit(ctx, buf.addr(by * PITCH + bx), bs, PITCH, bs, AccessKind::Write);
        }
    }
    // Streaming: contiguous multi-line rows, stride == row_bytes.
    for pass in 0..3u64 {
        let kind = if pass == 1 { AccessKind::Write } else { AccessKind::Read };
        emit(ctx, buf.addr((8 << 20) + pass * 128), PITCH, PITCH, 1536, kind);
    }
}

fn run_adversary(
    platform: Platform,
    timing: EngineTiming,
    port: Port,
    ranged: bool,
    fast: bool,
    faults: Option<u64>,
) -> String {
    let mut ctx = SimContext::new(platform, timing, port);
    if let Some(fault_seed) = faults {
        let plan = FaultPlan::new(FaultConfig::with_rate(0.4), fault_seed).unwrap();
        ctx = ctx.with_fault_plan(plan);
    }
    ctx.set_fast_path(fast);
    drive_adversary(&mut ctx, ranged, 0x0704 ^ port as u64);
    fingerprint(&ctx)
}

/// Ranged descriptors against the forced-scalar per-row loop on all
/// three platforms: column-major, motion-search and streaming patterns
/// (tens of thousands of rows — over a million line touches in
/// aggregate) must leave bit-identical machine state.
#[test]
fn ranged_adversaries_match_forced_scalar_walk() {
    for (name, platform, timing, port) in platforms() {
        let ranged = run_adversary(platform, timing, port, true, true, None);
        let scalar = run_adversary(platform, timing, port, false, false, None);
        assert_eq!(ranged, scalar, "platform {name}");
    }
}

/// Same differential with a seeded fault plan attached: `access_range`
/// must take the scalar path under faults and consume exactly the same
/// random draws as the hand-written loop.
#[test]
fn ranged_adversaries_match_forced_scalar_under_faults() {
    for (name, platform, timing, port) in platforms() {
        let ranged = run_adversary(platform, timing, port, true, true, Some(0xFA58 ^ port as u64));
        let scalar =
            run_adversary(platform, timing, port, false, false, Some(0xFA58 ^ port as u64));
        assert_eq!(ranged, scalar, "platform {name}");
    }
}

/// Same differential with tracing attached: fingerprints and tracer
/// metric totals must both match.
#[test]
fn ranged_adversaries_match_forced_scalar_with_tracing() {
    for (name, platform, timing, port) in platforms() {
        let ta = Tracer::new();
        let tb = Tracer::new();
        let mut a = SimContext::new(platform, timing, port).with_tracer(&ta);
        let mut b = SimContext::new(platform, timing, port).with_tracer(&tb);
        b.set_fast_path(false);
        drive_adversary(&mut a, true, 0x0705);
        drive_adversary(&mut b, false, 0x0705);
        assert_eq!(fingerprint(&a), fingerprint(&b), "platform {name}");
        assert_eq!(ta.metrics().to_json(), tb.metrics().to_json(), "platform {name}");
    }
}

/// Bit-identity holds with tracing enabled, and the two paths emit the
/// same metric totals (the fast path replays the exact per-access
/// tracer updates the slow path would have made).
#[test]
fn fast_path_emits_identical_trace_metrics() {
    for (name, platform, timing, port) in platforms() {
        let ta = Tracer::new();
        let tb = Tracer::new();
        let mut a = SimContext::new(platform, timing, port).with_tracer(&ta);
        let mut b = SimContext::new(platform, timing, port).with_tracer(&tb);
        b.set_fast_path(false);
        drive(&mut a, 60_000, 0x0703);
        drive(&mut b, 60_000, 0x0703);
        assert_eq!(fingerprint(&a), fingerprint(&b), "platform {name}");
        assert_eq!(ta.metrics().to_json(), tb.metrics().to_json(), "platform {name}");
    }
}
