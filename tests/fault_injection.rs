//! End-to-end properties of the fault-injection subsystem: deterministic
//! schedules, deterministic degraded runs, the zero-fault bit-identity
//! guarantee, and panic-free decompression of hostile bytes.

use dmpim::chrome::lzo::{compress, decompress};
use dmpim::chrome::tiling::TextureTilingKernel;
use dmpim::core::rng::SplitMix64;
use dmpim::core::{
    DmpimError, ExecutionMode, FaultConfig, FaultPlan, OffloadEngine, RunReport, Watchdog,
};

fn report_key(r: &RunReport) -> (u64, u64, u64) {
    (r.runtime_ps, r.energy.total_pj().to_bits(), r.instructions)
}

/// Same seed ⇒ identical windowed schedule, across plan rebuilds and seeds
/// spanning the whole u64 space.
#[test]
fn fault_plan_schedule_is_deterministic() {
    let mut rng = SplitMix64::new(0xFA41_7001);
    for _ in 0..24 {
        let rate = rng.next_f64();
        let seed = rng.next_u64();
        let cfg = FaultConfig::with_rate(rate);
        let a = FaultPlan::new(cfg, seed).unwrap();
        let b = FaultPlan::new(cfg, seed).unwrap();
        assert_eq!(a.schedule(), b.schedule(), "rate {rate} seed {seed:#x}");
    }
}

/// Same seed ⇒ identical `RunReport` from a faulted, resilient run: the
/// whole degradation path (retries, backoff, fallback) replays exactly.
#[test]
fn faulted_runs_are_deterministic() {
    let mut rng = SplitMix64::new(0xFA41_7002);
    for case in 0..4 {
        let seed = rng.next_u64();
        let rate = 0.3 + 0.6 * rng.next_f64();
        let run = || {
            let engine = OffloadEngine::new().with_faults(FaultConfig::with_rate(rate), seed);
            let mut k = TextureTilingKernel::new(64, 64, 1);
            engine.run(&mut k, ExecutionMode::PimAcc)
        };
        let a = run();
        let b = run();
        assert_eq!(report_key(&a), report_key(&b), "case {case} seed {seed:#x}");
        assert_eq!(a.executed, b.executed, "case {case} seed {seed:#x}");
        let (da, db) = (a.degradation, b.degradation);
        assert_eq!(
            da.as_ref().map(|d| (d.retries, d.fallbacks, d.backoff_ps, d.faults)),
            db.as_ref().map(|d| (d.retries, d.fallbacks, d.backoff_ps, d.faults)),
            "case {case} seed {seed:#x}"
        );
    }
}

/// A zero-fault plan is bit-identical to running with no plan at all.
#[test]
fn zero_fault_plan_is_bit_identical_to_no_faults() {
    let plain = {
        let mut k = TextureTilingKernel::new(64, 64, 1);
        OffloadEngine::new().run(&mut k, ExecutionMode::PimCore)
    };
    let mut rng = SplitMix64::new(0xFA41_7003);
    for _ in 0..4 {
        let seed = rng.next_u64();
        let engine = OffloadEngine::new().with_faults(FaultConfig::none(), seed);
        let mut k = TextureTilingKernel::new(64, 64, 1);
        let faulted = engine.run(&mut k, ExecutionMode::PimCore);
        assert_eq!(report_key(&plain), report_key(&faulted), "seed {seed:#x}");
        assert_eq!(faulted.executed, ExecutionMode::PimCore);
    }
}

/// A hostile fault environment degrades to CPU-only instead of failing:
/// the report always comes back, and CpuOnly is reached when PIM is dead.
#[test]
fn hostile_environment_degrades_to_cpu() {
    let cfg = FaultConfig { vault_fail_prob: 1.0, horizon_ps: 1, ..FaultConfig::with_rate(1.0) };
    let engine = OffloadEngine::new().with_faults(cfg, 9);
    let mut k = TextureTilingKernel::new(64, 64, 1);
    let r = engine.run(&mut k, ExecutionMode::PimAcc);
    assert_eq!(r.executed, ExecutionMode::CpuOnly);
    assert!(r.degraded());
    let d = r.degradation.unwrap();
    assert!(d.fallbacks > 0);
    assert!(d.error.is_none(), "CpuOnly should complete: {:?}", d.error);
}

/// Zero-byte DRAM draws consume no randomness and leave no trace in the
/// plan's statistics: interleaving them freely (as the access fast path
/// does by skipping the call entirely) cannot shift later draws.
#[test]
fn zero_byte_dram_draws_consume_no_randomness() {
    let cfg = FaultConfig::with_rate(0.7);
    let mut with_zero_draws = FaultPlan::new(cfg, 0xD3A4).unwrap();
    let mut plain = FaultPlan::new(cfg, 0xD3A4).unwrap();
    let mut rng = SplitMix64::new(0xFA41_7005);
    for step in 0..256 {
        with_zero_draws.draw_dram_faults(0);
        let bytes = rng.next_below(1 << 22);
        let a = with_zero_draws.draw_dram_faults(bytes);
        let b = plain.draw_dram_faults(bytes);
        assert_eq!(
            (a.corrected, a.uncorrectable),
            (b.corrected, b.uncorrectable),
            "step {step}"
        );
        with_zero_draws.draw_dram_faults(0);
    }
    assert_eq!(with_zero_draws.stats(), plain.stats());
}

/// The watchdog turns runaway simulations into an error, deterministically.
#[test]
fn watchdog_reports_timeout_instead_of_hanging() {
    let engine = OffloadEngine::new().with_watchdog(Watchdog::new(1, 1));
    let mut k = TextureTilingKernel::new(64, 64, 1);
    let e = engine.try_run(&mut k, ExecutionMode::CpuOnly).unwrap_err();
    assert!(matches!(e, DmpimError::WatchdogTimeout { .. }), "{e}");
}

/// LZO decompression never panics, whatever the bytes: arbitrary garbage,
/// truncations and corruptions of valid streams all return `Ok`/`Err`.
#[test]
fn lzo_decompress_never_panics_on_arbitrary_bytes() {
    let mut rng = SplitMix64::new(0xFA41_7004);
    for _ in 0..256 {
        let len = rng.next_below(1024) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u8()).collect();
        let _ = decompress(&data);
    }
    let original: Vec<u8> = (0..4096).map(|_| rng.next_u8()).collect();
    let packed = compress(&original);
    for cut in (0..packed.len()).step_by(7) {
        let _ = decompress(&packed[..cut]);
    }
    for _ in 0..256 {
        let mut m = packed.clone();
        let at = rng.next_below(m.len() as u64) as usize;
        m[at] = m[at].wrapping_add(rng.next_range(1, 256) as u8);
        let _ = decompress(&m);
    }
}
