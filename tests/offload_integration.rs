//! Cross-crate integration: every PIM-target kernel through the full
//! offload engine, checking the paper's structural claims end to end.

use dmpim::chrome::lzo::{CompressionKernel, DecompressionKernel};
use dmpim::chrome::lzo::synthetic_tab_dump;
use dmpim::chrome::tiling::TextureTilingKernel;
use dmpim::chrome::ColorBlittingKernel;
use dmpim::core::{ExecutionMode, Kernel, OffloadEngine};
use dmpim::tfmobile::pack::PackingKernel;
use dmpim::tfmobile::quantize::QuantizationKernel;
use dmpim::vp9::driver::{DeblockingFilterKernel, MotionEstimationKernel, SubPixelInterpolationKernel};
use dmpim::vp9::frame::SyntheticVideo;

/// Small-input versions of all nine PIM-target kernels.
fn small_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(TextureTilingKernel::new(128, 128, 1)),
        Box::new(ColorBlittingKernel::new(vec![32, 64, 128], 256, 2)),
        Box::new(CompressionKernel::new(synthetic_tab_dump(48, 3))),
        Box::new(DecompressionKernel::new(
            synthetic_tab_dump(48, 3).iter().map(|p| dmpim::chrome::compress(p)).collect(),
        )),
        Box::new(PackingKernel::new(vec![(196, 288, 64)])),
        Box::new(QuantizationKernel::new(vec![(196, 128)])),
        Box::new(SubPixelInterpolationKernel::new(SyntheticVideo::new(192, 144, 1, 4), 1)),
        Box::new(DeblockingFilterKernel::new(SyntheticVideo::new(192, 144, 3, 5), 1)),
        Box::new(MotionEstimationKernel::new(SyntheticVideo::new(128, 96, 1, 6), 1, 8)),
    ]
}

#[test]
fn every_kernel_runs_under_every_mode() {
    let engine = OffloadEngine::new();
    for mut k in small_kernels() {
        let reports = engine.run_all(k.as_mut());
        assert_eq!(reports.len(), 3, "{}", k.name());
        for r in &reports {
            assert!(r.runtime_ps > 0, "{} {:?}", k.name(), r.mode);
            assert!(r.energy.total_pj() > 0.0, "{} {:?}", k.name(), r.mode);
            assert!(r.instructions > 0, "{} {:?}", k.name(), r.mode);
        }
    }
}

#[test]
fn pim_modes_always_cut_data_movement_energy() {
    // The core claim: moving the computation to memory removes the
    // off-chip interconnect from every kernel's energy bill.
    let engine = OffloadEngine::new();
    for mut k in small_kernels() {
        let reports = engine.run_all(k.as_mut());
        let (cpu, core, acc) = (&reports[0], &reports[1], &reports[2]);
        let dm = |r: &dmpim::core::RunReport| r.energy.data_movement_pj();
        assert!(
            dm(core) < dm(cpu),
            "{}: PIM-Core DM {} !< CPU DM {}",
            k.name(),
            dm(core),
            dm(cpu)
        );
        assert!(dm(acc) < dm(cpu), "{}", k.name());
        // And no off-chip traffic beyond the coherence hand-off.
        assert!(
            core.activity.offchip_bytes < cpu.activity.offchip_bytes / 4,
            "{}: offchip {} vs {}",
            k.name(),
            core.activity.offchip_bytes,
            cpu.activity.offchip_bytes
        );
    }
}

#[test]
fn accelerator_never_loses_to_pim_core_on_energy() {
    let engine = OffloadEngine::new();
    for mut k in small_kernels() {
        let reports = engine.run_all(k.as_mut());
        assert!(
            reports[2].energy.total_pj() <= reports[1].energy.total_pj() * 1.05,
            "{}: acc {} vs core {}",
            k.name(),
            reports[2].energy.total_pj(),
            reports[1].energy.total_pj()
        );
        assert!(
            reports[2].runtime_ps <= reports[1].runtime_ps,
            "{}: accelerator should not be slower than the PIM core",
            k.name()
        );
    }
}

#[test]
fn coherence_messages_only_appear_in_pim_modes() {
    let engine = OffloadEngine::new();
    let mut k = TextureTilingKernel::new(64, 64, 1);
    let cpu = engine.run(&mut k, ExecutionMode::CpuOnly);
    let pim = engine.run(&mut k, ExecutionMode::PimCore);
    // CPU-only has zero internal-stack traffic; PIM has zero LLC activity.
    assert_eq!(cpu.activity.internal_bytes, 0);
    assert_eq!(pim.by_tag.get("texture_tiling").unwrap().activity.llc_accesses, 0);
}

#[test]
fn reports_expose_consistent_per_tag_accounting() {
    let engine = OffloadEngine::new();
    let mut k = ColorBlittingKernel::new(vec![64, 128], 256, 7);
    let r = engine.run(&mut k, ExecutionMode::CpuOnly);
    let tag_total: f64 = r.by_tag.values().map(|t| t.energy.total_pj()).sum();
    assert!((tag_total - r.energy.total_pj()).abs() < 1e-6 * r.energy.total_pj());
    let tag_instr: u64 = r.by_tag.values().map(|t| t.ops.total()).sum();
    assert_eq!(tag_instr, r.instructions);
}
