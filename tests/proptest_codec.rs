//! Property-style tests on the video codec and decoder robustness.
//!
//! The container has no third-party property-testing crate, so each
//! property runs over a deterministic seeded sweep: inputs are drawn from
//! [`SplitMix64`] across a fixed number of cases. Failures print the
//! per-case seed so a run is reproducible by construction.

use dmpim::core::rng::SplitMix64;
use dmpim::vp9::decoder::decode_frame;
use dmpim::vp9::encoder::{encode_frame, EncoderConfig};
use dmpim::vp9::frame::{Plane, SyntheticVideo};
use dmpim::vp9::interp::interpolate_block;

/// For any quality, noise level and seed, a two-frame GOP decodes
/// bit-exactly to the encoder's reconstruction.
#[test]
fn gop_bit_exact_for_any_config() {
    let mut rng = SplitMix64::new(0xC0DE_C001);
    for case in 0..16 {
        let q = rng.next_below(64) as u8;
        let noise = rng.next_below(6) as u8;
        let seed = rng.next_u64();
        let range = rng.next_range(4, 20) as i32;
        let v = SyntheticVideo::new(64, 48, noise, seed);
        let cfg = EncoderConfig { q, range };
        let (key, recon0, _) = encode_frame(&v.frame(0), &[], cfg);
        let d0 = decode_frame(&key.data, &[]).unwrap();
        assert_eq!(&d0.plane, &recon0, "case {case}: q={q} noise={noise} seed={seed:#x}");
        let (inter, recon1, _) = encode_frame(&v.frame(1), &[&recon0], cfg);
        let d1 = decode_frame(&inter.data, &[&d0.plane]).unwrap();
        assert_eq!(&d1.plane, &recon1, "case {case}: q={q} noise={noise} seed={seed:#x}");
    }
}

/// Lower quality indices never decrease the bitstream size by much — rate
/// falls monotonically (with slack for entropy-coder noise) as q rises.
#[test]
fn rate_falls_as_q_rises() {
    let mut rng = SplitMix64::new(0xC0DE_C002);
    for case in 0..8 {
        let seed = rng.next_u64();
        let v = SyntheticVideo::new(64, 48, 2, seed);
        let (_, r0, _) = encode_frame(&v.frame(0), &[], EncoderConfig { q: 8, range: 8 });
        let sizes: Vec<usize> = [4u8, 16, 40]
            .iter()
            .map(|&q| encode_frame(&v.frame(1), &[&r0], EncoderConfig { q, range: 8 }).0.data.len())
            .collect();
        assert!(sizes[0] as f64 >= sizes[1] as f64 * 0.8, "case {case} seed {seed:#x}: {sizes:?}");
        assert!(sizes[1] as f64 >= sizes[2] as f64 * 0.8, "case {case} seed {seed:#x}: {sizes:?}");
    }
}

/// The decoder never panics on arbitrary garbage input.
#[test]
fn decoder_survives_garbage() {
    let mut rng = SplitMix64::new(0xC0DE_C003);
    let reference = Plane::new(32, 32);
    for _ in 0..200 {
        let len = rng.next_below(512) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u8()).collect();
        let _ = decode_frame(&data, &[&reference]);
        let _ = decode_frame(&data, &[]);
    }
}

/// Interpolating a constant plane returns the constant at every phase and
/// block size (unity-gain filters).
#[test]
fn interp_preserves_constants() {
    let mut rng = SplitMix64::new(0xC0DE_C004);
    for _ in 0..32 {
        let value = rng.next_u8();
        let fx = rng.next_below(8) as isize;
        let fy = rng.next_below(8) as isize;
        let bs = [4usize, 8, 16][rng.next_below(3) as usize];
        let p = Plane::filled(48, 48, value);
        let b = interpolate_block(&p, 8 * 16 + fx, 8 * 16 + fy, bs, bs);
        assert!(b.iter().all(|&v| v == value), "phase ({fx},{fy}) bs {bs} value {value}");
    }
}

/// Interpolation is deterministic at every fractional phase.
#[test]
fn interp_output_stays_in_pixel_range() {
    let mut rng = SplitMix64::new(0xC0DE_C005);
    for _ in 0..32 {
        let fx = rng.next_below(8) as isize;
        let fy = rng.next_below(8) as isize;
        let seed = rng.next_u64();
        let v = SyntheticVideo::new(48, 48, 3, seed);
        let p = v.frame(0);
        let b = interpolate_block(&p, 8 * 20 + fx, 8 * 20 + fy, 8, 8);
        // u8 output is range-clamped by construction; sanity: deterministic.
        let b2 = interpolate_block(&p, 8 * 20 + fx, 8 * 20 + fy, 8, 8);
        assert_eq!(b, b2, "phase ({fx},{fy}) seed {seed:#x}");
    }
}

/// Flushing a cache invalidates everything it held.
#[test]
fn cache_flush_empties() {
    use dmpim::memsim::{AccessKind, Cache, CacheConfig};
    let mut rng = SplitMix64::new(0xC0DE_C006);
    for _ in 0..32 {
        let n = rng.next_range(1, 100) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.next_below(100_000)).collect();
        let mut c = Cache::new(CacheConfig { capacity_bytes: 8192, associativity: 4 }).unwrap();
        for &a in &addrs {
            c.access(a, AccessKind::Write);
        }
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
        for &a in &addrs {
            assert!(!c.contains(a));
        }
    }
}
