//! Property-based tests on the video codec and decoder robustness.

use dmpim::vp9::decoder::decode_frame;
use dmpim::vp9::encoder::{encode_frame, EncoderConfig};
use dmpim::vp9::frame::{Plane, SyntheticVideo};
use dmpim::vp9::interp::interpolate_block;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any quality, noise level and seed, a two-frame GOP decodes
    /// bit-exactly to the encoder's reconstruction.
    #[test]
    fn gop_bit_exact_for_any_config(
        q in 0u8..=63,
        noise in 0u8..6,
        seed in any::<u64>(),
        range in 4i32..20,
    ) {
        let v = SyntheticVideo::new(64, 48, noise, seed);
        let cfg = EncoderConfig { q, range };
        let (key, recon0, _) = encode_frame(&v.frame(0), &[], cfg);
        let d0 = decode_frame(&key.data, &[]).unwrap();
        prop_assert_eq!(&d0.plane, &recon0);
        let (inter, recon1, _) = encode_frame(&v.frame(1), &[&recon0], cfg);
        let d1 = decode_frame(&inter.data, &[&d0.plane]).unwrap();
        prop_assert_eq!(&d1.plane, &recon1);
    }

    /// Lower quality indices never decrease the bitstream size by much —
    /// rate falls monotonically (with slack for entropy-coder noise) as q
    /// rises.
    #[test]
    fn rate_falls_as_q_rises(seed in any::<u64>()) {
        let v = SyntheticVideo::new(64, 48, 2, seed);
        let (recon0, sizes): (Plane, Vec<usize>) = {
            let (_, r0, _) = encode_frame(&v.frame(0), &[], EncoderConfig { q: 8, range: 8 });
            let sizes = [4u8, 16, 40]
                .iter()
                .map(|&q| {
                    encode_frame(&v.frame(1), &[&r0], EncoderConfig { q, range: 8 }).0.data.len()
                })
                .collect();
            (r0, sizes)
        };
        let _ = recon0;
        prop_assert!(sizes[0] as f64 >= sizes[1] as f64 * 0.8, "{sizes:?}");
        prop_assert!(sizes[1] as f64 >= sizes[2] as f64 * 0.8, "{sizes:?}");
    }

    /// The decoder never panics on arbitrary garbage input.
    #[test]
    fn decoder_survives_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let reference = Plane::new(32, 32);
        let _ = decode_frame(&data, &[&reference]);
    }

    /// Interpolating a constant plane returns the constant at every phase
    /// and block size (unity-gain filters).
    #[test]
    fn interp_preserves_constants(
        value in any::<u8>(),
        fx in 0isize..8,
        fy in 0isize..8,
        bs in prop::sample::select(vec![4usize, 8, 16]),
    ) {
        let p = Plane::filled(48, 48, value);
        let b = interpolate_block(&p, 8 * 16 + fx, 8 * 16 + fy, bs, bs);
        prop_assert!(b.iter().all(|&v| v == value), "phase ({fx},{fy})");
    }

    /// Interpolated samples never leave the range spanned by the
    /// reference pixels of a two-level plane (no ringing past clamp).
    #[test]
    fn interp_output_stays_in_pixel_range(
        fx in 0isize..8,
        fy in 0isize..8,
        seed in any::<u64>(),
    ) {
        let v = SyntheticVideo::new(48, 48, 3, seed);
        let p = v.frame(0);
        let b = interpolate_block(&p, 8 * 20 + fx, 8 * 20 + fy, 8, 8);
        // u8 output is range-clamped by construction; sanity: deterministic.
        let b2 = interpolate_block(&p, 8 * 20 + fx, 8 * 20 + fy, 8, 8);
        prop_assert_eq!(b, b2);
    }

    /// Flushing a cache invalidates everything it held.
    #[test]
    fn cache_flush_empties(addrs in proptest::collection::vec(0u64..100_000, 1..100)) {
        use dmpim::memsim::{AccessKind, Cache, CacheConfig};
        let mut c = Cache::new(CacheConfig { capacity_bytes: 8192, associativity: 4 });
        for &a in &addrs {
            c.access(a, AccessKind::Write);
        }
        c.flush_all();
        prop_assert_eq!(c.resident_lines(), 0);
        for &a in &addrs {
            prop_assert!(!c.contains(a));
        }
    }
}
