//! End-to-end supervision guarantees of the sweep harness, exercised
//! with real simulation kernels:
//!
//! * a sweep killed after K of M jobs resumes from its journal, re-runs
//!   only the unfinished jobs, and merges to bit-identical results;
//! * `workers = N` produces byte-identical merged output to a serial run;
//! * a panicking job is isolated — every sibling still delivers the same
//!   payload it produces in a clean sweep;
//! * a hung simulation is struck out by the watchdog and quarantined;
//! * an invalid platform configuration surfaces as a typed
//!   `invalid-config` failure, not a panic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dmpim::chrome::tiling::TextureTilingKernel;
use dmpim::core::{
    DmpimError, ExecutionMode, Kernel, OffloadEngine, OpMix, Platform, ResiliencePolicy,
    SimContext, Watchdog,
};
use dmpim::harness::{Harness, HarnessPolicy, Job, JobStatus};

/// Payload of one kernel job: executed mode, runtime, energy — enough
/// that any nondeterminism or state bleed between jobs shows up as a
/// byte difference.
fn run_tiling(size: usize, mode: ExecutionMode) -> Result<String, DmpimError> {
    let engine = OffloadEngine::new();
    let mut kernel = TextureTilingKernel::new(size, size, 1);
    let report = engine.try_run(&mut kernel, mode)?;
    Ok(format!(
        "{}|{}|{}",
        report.executed.label(),
        report.runtime_ps,
        report.energy.total_pj()
    ))
}

/// A small sweep of real kernel jobs: tile sizes × execution modes.
fn kernel_jobs(counter: Option<Arc<AtomicUsize>>) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (i, &(size, mode)) in [
        (32usize, ExecutionMode::CpuOnly),
        (32, ExecutionMode::PimCore),
        (32, ExecutionMode::PimAcc),
        (48, ExecutionMode::CpuOnly),
        (48, ExecutionMode::PimCore),
        (48, ExecutionMode::PimAcc),
    ]
    .iter()
    .enumerate()
    {
        let counter = counter.clone();
        jobs.push(Job::new(format!("tile-{i}-{}", mode.label()), move |_ctx| {
            if let Some(c) = &counter {
                c.fetch_add(1, Ordering::SeqCst);
            }
            run_tiling(size, mode)
        }));
    }
    jobs
}

fn quick_policy(workers: usize) -> HarnessPolicy {
    HarnessPolicy {
        workers,
        retry_backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..HarnessPolicy::default()
    }
}

#[test]
fn killed_sweep_resumes_to_bit_identical_results() {
    let mut path = std::env::temp_dir();
    path.push(format!("dmpim-harness-resume-{}.jsonl", std::process::id()));

    // Reference: a full journaled run.
    let reference = Harness::new(quick_policy(1))
        .with_journal(&path)
        .run(kernel_jobs(None))
        .expect("journaled run");
    assert!(reference.all_ok(), "{:?}", reference.summary());

    // Simulate a kill after 3 of 6 jobs: keep the header + 3 result lines.
    let text = std::fs::read_to_string(&path).expect("journal readable");
    assert_eq!(text.lines().count(), 7, "header + one line per job");
    let keep: Vec<&str> = text.lines().take(4).collect();
    std::fs::write(&path, format!("{}\n", keep.join("\n"))).expect("truncate journal");

    let reran = Arc::new(AtomicUsize::new(0));
    let resumed = Harness::new(quick_policy(2))
        .resume_from(&path)
        .run(kernel_jobs(Some(Arc::clone(&reran))))
        .expect("resumed run");

    assert_eq!(reran.load(Ordering::SeqCst), 3, "only the 3 unfinished jobs re-run");
    assert_eq!(resumed.resumed, 3);
    assert_eq!(resumed.results, reference.results, "merged results are bit-identical");
    // The re-written journal is complete again: resuming once more runs nothing.
    let rerun2 = Arc::new(AtomicUsize::new(0));
    let third = Harness::new(quick_policy(1))
        .resume_from(&path)
        .run(kernel_jobs(Some(Arc::clone(&rerun2))))
        .expect("second resume");
    assert_eq!(rerun2.load(Ordering::SeqCst), 0);
    assert_eq!(third.results, reference.results);
    std::fs::remove_file(&path).ok();
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let serial = Harness::new(quick_policy(1)).run(kernel_jobs(None)).expect("serial");
    let parallel = Harness::new(quick_policy(4)).run(kernel_jobs(None)).expect("parallel");
    assert_eq!(serial.results, parallel.results);
    assert_eq!(
        serial.to_json_value().render(),
        parallel.to_json_value().render(),
        "merged report must be independent of worker count"
    );
}

#[test]
fn panicking_job_does_not_lose_sibling_results() {
    let clean = Harness::new(quick_policy(1)).run(kernel_jobs(None)).expect("clean sweep");

    let mut jobs = kernel_jobs(None);
    jobs.insert(
        2,
        Job::new("panicker", |_ctx| -> Result<String, DmpimError> {
            panic!("injected panic mid-sweep");
        }),
    );
    let report = Harness::new(quick_policy(3)).run(jobs).expect("sweep with panicker");

    let summary = report.summary();
    assert_eq!(summary.total, 7);
    assert_eq!(summary.succeeded, 6);
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.taxonomy.get("panic"), Some(&1));

    let panicked = &report.results[2];
    assert_eq!(panicked.status, JobStatus::Failed);
    assert_eq!(panicked.attempts, 1, "panics are deterministic: no retry");
    assert!(panicked.error.as_deref().unwrap_or("").contains("injected panic"));

    // Every sibling's payload matches the clean sweep exactly.
    let siblings: Vec<_> =
        report.results.iter().filter(|r| r.id != "panicker").cloned().collect();
    assert_eq!(siblings, clean.results);
}

/// A simulation that never terminates on its own: spins until a
/// watchdog poisons the context.
struct RunawayKernel;

impl Kernel for RunawayKernel {
    fn name(&self) -> &'static str {
        "runaway"
    }

    fn run(&mut self, ctx: &mut SimContext) {
        while !ctx.is_poisoned() {
            ctx.ops(OpMix::scalar(64));
        }
    }
}

#[test]
fn hung_simulation_is_quarantined_by_watchdog_strikes() {
    let policy = HarnessPolicy {
        quarantine_strikes: 2,
        watchdog: Watchdog::new(u64::MAX, 50_000),
        ..quick_policy(2)
    };
    let mut jobs = kernel_jobs(None);
    jobs.push(Job::new("runaway", |ctx| {
        let engine = OffloadEngine::new().with_watchdog(ctx.watchdog).with_resilience(
            ResiliencePolicy { max_retries: 0, allow_fallback: false, ..Default::default() },
        );
        engine.try_run(&mut RunawayKernel, ExecutionMode::CpuOnly)?;
        Ok("unreachable".to_string())
    }));
    let report = Harness::new(policy).run(jobs).expect("sweep with runaway");

    let runaway = report.results.last().expect("runaway result");
    assert_eq!(runaway.status, JobStatus::Quarantined);
    assert_eq!(runaway.attempts, 2, "two timeout strikes, then quarantine");
    assert_eq!(runaway.error_label.as_deref(), Some("watchdog-timeout"));
    let summary = report.summary();
    assert_eq!(summary.quarantined, 1);
    assert_eq!(summary.succeeded, 6, "siblings complete despite the hang");
}

#[test]
fn invalid_config_job_reports_typed_error_without_aborting() {
    let mut jobs = kernel_jobs(None);
    jobs.push(Job::new("bad-geometry", |_ctx| {
        let mut platform = Platform::baseline();
        platform.mem.cpu_l1.associativity = 0;
        let engine = OffloadEngine::new().with_baseline(platform);
        let mut kernel = TextureTilingKernel::new(32, 32, 1);
        engine.try_run(&mut kernel, ExecutionMode::CpuOnly)?;
        Ok("unreachable".to_string())
    }));
    let report = Harness::new(quick_policy(2)).run(jobs).expect("sweep with bad config");

    let bad = report.results.last().expect("bad-geometry result");
    assert_eq!(bad.status, JobStatus::Failed);
    assert_eq!(bad.attempts, 1, "config errors are not transient: no retry");
    assert_eq!(bad.error_label.as_deref(), Some("invalid-config"));
    assert!(bad.error.as_deref().unwrap_or("").contains("cpu_l1"));
    assert_eq!(report.summary().succeeded, 6);
    assert_eq!(report.summary().taxonomy.get("invalid-config"), Some(&1));
}
