//! The reproduction's fidelity bands: fast versions of the headline
//! claims, pinned so regressions in any substrate show up here.

use dmpim::chrome::page::PageModel;
use dmpim::chrome::scroll::run_scroll;
use dmpim::core::{ExecutionMode, OffloadEngine, Platform, SimContext};
use dmpim::energy::EnergyParams;
use dmpim::tfmobile::inference::run_inference;
use dmpim::tfmobile::network::{Network, NetworkKind};
use dmpim::vp9::hw::{hw_energy, HwPimMode, Resolution};

#[test]
fn data_movement_dominates_the_consumer_workloads() {
    // §1: 62.7% of total system energy goes to data movement, averaged
    // across the workloads. Check the two fast characterizations.
    let mut ctx = SimContext::cpu_only(Platform::baseline());
    let scroll = run_scroll(&PageModel::google_docs(), &mut ctx);
    assert!(scroll.data_movement_fraction > 0.6, "scroll DM {}", scroll.data_movement_fraction);

    let mut ctx = SimContext::cpu_only(Platform::baseline());
    let infer = run_inference(&Network::scaled(NetworkKind::ResNetV2152, 4), &mut ctx);
    assert!(infer.dm_fraction > 0.5, "inference DM {}", infer.dm_fraction);
}

#[test]
fn pim_cuts_energy_for_a_representative_target() {
    // §12: PIM-Core ~49.1% / PIM-Acc ~55.4% average energy reduction.
    let engine = OffloadEngine::new();
    let mut k = dmpim::chrome::tiling::TextureTilingKernel::new(256, 256, 9);
    let cpu = engine.run(&mut k, ExecutionMode::CpuOnly);
    let core = engine.run(&mut k, ExecutionMode::PimCore);
    let acc = engine.run(&mut k, ExecutionMode::PimAcc);
    assert!((0.30..0.70).contains(&core.energy_vs(&cpu)), "core {}", core.energy_vs(&cpu));
    assert!(acc.energy_vs(&cpu) <= core.energy_vs(&cpu) + 0.02);
    assert!(core.speedup_vs(&cpu) > 1.0);
    assert!(acc.speedup_vs(&cpu) > core.speedup_vs(&cpu));
}

#[test]
fn hardware_codec_crossovers_hold() {
    // §10.3.2's four observations, end to end through the energy model.
    let p = EnergyParams::default();
    for encode in [false, true] {
        let base = hw_energy(Resolution::Uhd4k, false, HwPimMode::Baseline, encode, &p).total_pj();
        let base_comp = hw_energy(Resolution::Uhd4k, true, HwPimMode::Baseline, encode, &p).total_pj();
        let core_comp = hw_energy(Resolution::Uhd4k, true, HwPimMode::PimCore, encode, &p).total_pj();
        let acc = hw_energy(Resolution::Uhd4k, false, HwPimMode::PimAcc, encode, &p).total_pj();
        let acc_comp = hw_energy(Resolution::Uhd4k, true, HwPimMode::PimAcc, encode, &p).total_pj();
        // Compression helps the baseline.
        assert!(base_comp < base);
        // PIM-Core loses to the compressed baseline (compute inefficiency).
        assert!(core_comp > base_comp, "encode={encode}");
        // PIM-Acc wins big...
        assert!(acc < 0.6 * base, "encode={encode}");
        // ...even without compression, against the compressed baseline...
        assert!(acc < base_comp, "encode={encode}");
        // ...and combining PIM-Acc with compression is the best config.
        assert!(acc_comp < acc, "encode={encode}");
    }
}

#[test]
fn pim_area_budget_is_respected_by_every_target() {
    let area = dmpim::core::AreaModel::default();
    assert!(area.pim_core_fraction() < 0.095);
    for t in dmpim::core::PimTargetKind::ALL {
        assert!(area.fits(t.accelerator_mm2()), "{t}");
        assert!(area.fraction_of_vault(t.accelerator_mm2()) <= 0.355, "{t}");
    }
}

#[test]
fn table1_platforms_differ_only_in_memory() {
    let base = Platform::baseline();
    let pim = Platform::pim();
    assert_eq!(base.mem.cpu_l1, pim.mem.cpu_l1);
    assert_eq!(base.mem.llc, pim.mem.llc);
    assert!(!base.mem.supports_pim());
    assert!(pim.mem.supports_pim());
}
