//! End-to-end data-integrity tests across the workload substrates: the
//! codec GOP, the compression/ZRAM path, and the quantized-GEMM path.

use dmpim::chrome::zram::ZramPool;
use dmpim::chrome::{compress, decompress};
use dmpim::tfmobile::gemm::gemm_quantized;
use dmpim::tfmobile::matrix::Matrix;
use dmpim::tfmobile::pack::{pack_lhs, pack_rhs, PACK_BLOCK};
use dmpim::tfmobile::quantize::{dequantize, quantize_f32};
use dmpim::vp9::decoder::decode_frame;
use dmpim::vp9::encoder::{encode_frame, EncoderConfig};
use dmpim::vp9::frame::{Plane, SyntheticVideo};

#[test]
fn ten_frame_gop_is_bit_exact_and_improves_over_time() {
    let video = SyntheticVideo::new(160, 128, 2, 0xabc);
    let cfg = EncoderConfig { q: 14, range: 12 };
    let mut enc_refs: Vec<Plane> = Vec::new();
    let mut dec_refs: Vec<Plane> = Vec::new();
    let mut key_size = 0;
    for i in 0..10 {
        let src = video.frame(i);
        let er: Vec<&Plane> = enc_refs.iter().rev().take(3).collect();
        let (frame, recon, _) = encode_frame(&src, &er, cfg);
        let dr: Vec<&Plane> = dec_refs.iter().rev().take(3).collect();
        let dec = decode_frame(&frame.data, &dr).expect("stream decodes");
        assert_eq!(dec.plane, recon, "frame {i} diverged");
        assert!(dec.plane.psnr(&src) > 30.0, "frame {i} quality");
        if i == 0 {
            key_size = frame.data.len();
        } else {
            assert!(frame.data.len() < key_size, "inter frames must be smaller");
        }
        enc_refs.push(recon);
        dec_refs.push(dec.plane);
    }
}

#[test]
fn zram_pool_round_trips_a_whole_tab() {
    let mut pool = ZramPool::new();
    let pages = dmpim::chrome::lzo::synthetic_tab_dump(128, 77);
    for (i, p) in pages.iter().enumerate() {
        pool.swap_out((3, i as u32), p);
    }
    assert!(pool.ratio() > 1.5, "tab memory must compress: {}", pool.ratio());
    // Swap in out of order and verify bytes.
    for (i, p) in pages.iter().enumerate().rev() {
        assert_eq!(pool.swap_in((3, i as u32)).unwrap(), *p, "page {i}");
    }
    assert_eq!(pool.stored_bytes(), 0);
}

#[test]
fn lzo_handles_pathological_inputs() {
    let cases: Vec<Vec<u8>> = vec![
        vec![],
        vec![0u8; 1 << 16],                        // 64 kB of zeros
        (0..=255u8).cycle().take(70_000).collect(), // periodic, long matches
        vec![0xAB; 3],                              // below MIN_MATCH
        (0..70_000).map(|i| ((i * 2_654_435_761u64) >> 24) as u8).collect(), // pseudo-random
    ];
    for (i, data) in cases.iter().enumerate() {
        let c = compress(data);
        assert_eq!(&decompress(&c).unwrap(), data, "case {i}");
    }
}

#[test]
fn quantized_gemm_through_pack_layouts_matches_direct_gemm() {
    // Packing is layout-only: packing then unpacking operands must leave
    // the multiplication's result unchanged.
    let a = Matrix::synthetic(12, 20, 1.0, 5);
    let b = Matrix::synthetic(20, 8, 1.0, 6);
    let (qa, pa) = quantize_f32(&a);
    let (qb, pb) = quantize_f32(&b);
    let direct = gemm_quantized(&qa, &qb, pa.zero_point, pb.zero_point);

    // Rebuild operands from their packed forms, then multiply.
    let packed_a = pack_lhs(&qa);
    let blocks = qa.rows().div_ceil(PACK_BLOCK);
    let mut rebuilt_a = Matrix::zeroed(qa.rows(), qa.cols());
    let mut idx = 0;
    for blk in 0..blocks {
        for c in 0..qa.cols() {
            for r in blk * PACK_BLOCK..(blk + 1) * PACK_BLOCK {
                if r < qa.rows() {
                    rebuilt_a.set(r, c, packed_a[idx]);
                }
                idx += 1;
            }
        }
    }
    let packed_b = pack_rhs(&qb);
    let cblocks = qb.cols().div_ceil(PACK_BLOCK);
    let mut rebuilt_b = Matrix::zeroed(qb.rows(), qb.cols());
    idx = 0;
    for blk in 0..cblocks {
        for r in 0..qb.rows() {
            for c in blk * PACK_BLOCK..(blk + 1) * PACK_BLOCK {
                if c < qb.cols() {
                    rebuilt_b.set(r, c, packed_b[idx]);
                }
                idx += 1;
            }
        }
    }
    let via_pack = gemm_quantized(&rebuilt_a, &rebuilt_b, pa.zero_point, pb.zero_point);
    assert_eq!(via_pack.data(), direct.data());

    // And the dequantized result approximates the float product.
    let approx = dequantize(
        &Matrix::from_vec(
            12,
            8,
            direct.data().iter().map(|&v| (v.clamp(0, 255)) as u8).collect(),
        ),
        pa,
    );
    assert_eq!(approx.rows(), 12);
}
